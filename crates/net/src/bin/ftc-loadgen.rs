//! `ftc-loadgen` — drive open- or closed-loop query load at an
//! `ftc-server` and report latency histograms.
//!
//! ```text
//! ftc-loadgen [--quick] [--addr HOST:PORT] [--graph-id ID] [--out PATH]
//!             [--emit-graph PATH]
//!             [--mode closed|open] [--conns N] [--depth N] [--pairs N]
//!             [--rate R] [--duration-ms N]
//! ```
//!
//! Without `--addr` the loadgen spawns an in-process server over the
//! deterministic workload graph (loopback, archive-backed service —
//! the same serving path as the standalone binary) and reports the
//! server's coalescer counters per scenario. With `--addr` it drives an
//! external server that must have the workload archive registered under
//! `--graph-id` (default `loadgen`); `--emit-graph PATH` writes that
//! graph's edge list for `ftc-cli build` and exits.
//!
//! The default run measures a fixed scenario suite into `BENCH_net.json`
//! (schema `ftc-perf-net/v1`):
//!
//! * `closed_pipelined` — the headline throughput arm: few connections,
//!   deep pipelining, large pair batches, rotating fault sets;
//! * `shared_faults` / `distinct_faults` — the coalescing comparison:
//!   identical closed-loop shape, but one arm has every connection
//!   querying the *same* fault set (cross-connection coalescing groups
//!   them onto shared sessions) while the other gives every request its
//!   own fault set (one session per request, the no-coalescing floor);
//! * `open_loop` — fixed arrival rate; latency is measured from each
//!   request's *scheduled* send time, so queueing delay is charged to
//!   the server (no coordinated omission).
//!
//! Two robustness scenarios opt in by flag (in-process server only):
//!
//! * `--overload` — measures the bounded server's saturation
//!   throughput, then offers 2× that open-loop: the server must shed
//!   the excess with `Overloaded` while the p99 service latency of the
//!   requests it accepts stays within a small multiple of uncontended;
//! * `--chaos` — resilient clients drive queries through a seeded
//!   fault-injection proxy (`--chaos-seed`) while archives are
//!   blue/green-swapped live; every answer is checked against a BFS
//!   oracle and the row reports injected faults, retries, reconnects,
//!   and (required zero) wrong answers.
//!
//! Any of `--mode/--conns/--depth/--pairs/--rate/--duration-ms` replaces
//! the suite with one custom scenario built from those knobs.

use ftc_core::store::{EdgeEncoding, LabelStore};
use ftc_core::{FtcScheme, Params};
use ftc_graph::{connectivity, generators, Graph};
use ftc_net::chaos::{ChaosConfig, ChaosProxy};
use ftc_net::client::{Client, ClientConfig, ClientError, ClientStats};
use ftc_net::histogram::LatencyHistogram;
use ftc_net::proto::ResponseBody;
use ftc_net::server::{Server, ServerConfig, ServerHandle};
use ftc_serve::{ConnectivityService, ServiceRegistry};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// workload
// ---------------------------------------------------------------------------

/// The deterministic workload: a graph, fault-set pools, and query
/// pairs, all derived from fixed seeds so an external server built from
/// `--emit-graph` answers the exact same byte stream.
struct Workload {
    graph: Graph,
    f: usize,
    /// Fault sets shared by every connection (rotation / shared arms).
    shared_faults: Vec<Vec<(usize, usize)>>,
    /// Query pairs, sliced per request.
    pairs: Vec<(usize, usize)>,
}

impl Workload {
    fn new(quick: bool) -> Workload {
        let (n, f) = if quick { (200, 2) } else { (1000, 4) };
        let graph = generators::random_connected(n, 3 * n, 7);
        let endpoint_of: Vec<(usize, usize)> = graph.edge_iter().map(|(_, u, v)| (u, v)).collect();
        let shared_faults = (0..if quick { 4 } else { 8 })
            .map(|s| {
                generators::random_fault_set(&graph, f, s as u64)
                    .iter()
                    .map(|&e| endpoint_of[e])
                    .collect()
            })
            .collect();
        let pairs = (0..4096)
            .map(|i| {
                let a = (i * 7919 + 13) % n;
                let b = (i * 104_729 + 31) % n;
                (a, b)
            })
            .collect();
        Workload {
            graph,
            f,
            shared_faults,
            pairs,
        }
    }

    /// A per-connection pool of fault sets distinct from every other
    /// connection's (so no two in-flight requests can share a coalescing
    /// key — the one-session-per-request floor).
    fn distinct_faults(&self, conn: usize, count: usize) -> Vec<Vec<(usize, usize)>> {
        let endpoint_of: Vec<(usize, usize)> =
            self.graph.edge_iter().map(|(_, u, v)| (u, v)).collect();
        (0..count)
            .map(|i| {
                let seed = 100 + 7919 * conn as u64 + i as u64;
                generators::random_fault_set(&self.graph, self.f, seed)
                    .iter()
                    .map(|&e| endpoint_of[e])
                    .collect()
            })
            .collect()
    }

    fn request_pairs(&self, index: usize, per_request: usize) -> &[(usize, usize)] {
        let start = (index * per_request) % (self.pairs.len() - per_request);
        &self.pairs[start..start + per_request]
    }
}

// ---------------------------------------------------------------------------
// scenarios
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum LoopMode {
    /// Keep `depth` requests in flight per connection at all times.
    Closed { depth: usize },
    /// Send at a fixed aggregate rate (requests/sec across all
    /// connections); latency counts from the scheduled send time.
    Open { rate: f64 },
}

#[derive(Clone, Copy)]
enum FaultChoice {
    /// Every request uses shared fault set 0 (maximal coalescing).
    SharedOne,
    /// Rotate through the shared pool (occasional coalescing overlap).
    Rotate,
    /// Per-connection distinct pools (no coalescing possible).
    Distinct,
}

struct Scenario {
    name: &'static str,
    mode: LoopMode,
    conns: usize,
    pairs_per_request: usize,
    faults: FaultChoice,
    duration: Duration,
}

fn suite(quick: bool) -> Vec<Scenario> {
    let secs = |s: u64| {
        if quick {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(s)
        }
    };
    // Per-request overhead (loopback round trip + a session build when
    // nothing coalesces) is ~1.5ms on a small host, so the throughput
    // headline amortizes it over large pair batches.
    let (depth, big, small) = if quick { (2, 64, 4) } else { (4, 512, 4) };
    vec![
        Scenario {
            name: "closed_pipelined",
            mode: LoopMode::Closed { depth },
            conns: 2,
            pairs_per_request: big,
            faults: FaultChoice::Rotate,
            duration: secs(4),
        },
        Scenario {
            name: "shared_faults",
            mode: LoopMode::Closed { depth: 1 },
            conns: 8,
            pairs_per_request: small,
            faults: FaultChoice::SharedOne,
            duration: secs(3),
        },
        Scenario {
            name: "distinct_faults",
            mode: LoopMode::Closed { depth: 1 },
            conns: 8,
            pairs_per_request: small,
            faults: FaultChoice::Distinct,
            duration: secs(3),
        },
        Scenario {
            name: "open_loop",
            // Kept well under the closed-loop request ceiling so the
            // report reflects latency under load, not queueing collapse.
            mode: LoopMode::Open {
                rate: if quick { 200.0 } else { 300.0 },
            },
            conns: 4,
            pairs_per_request: 16,
            faults: FaultChoice::Rotate,
            duration: secs(2),
        },
    ]
}

struct ScenarioResult {
    requests: u64,
    queries: u64,
    elapsed: f64,
    hist: LatencyHistogram,
    /// Coalescer counter deltas over the scenario (in-process only):
    /// requests, coalesced, batches.
    coalesce: Option<(u64, u64, u64)>,
}

/// One connection's closed-loop driver: keep `depth` requests in
/// flight, record completion − send latency per request.
fn run_closed(
    client: &mut Client,
    workload: &Workload,
    sc: &Scenario,
    conn: usize,
    graph_id: &str,
    deadline: Instant,
    hist: &mut LatencyHistogram,
) -> Result<u64, String> {
    let LoopMode::Closed { depth } = sc.mode else {
        return Err("run_closed on an open-loop scenario".into());
    };
    let distinct = match sc.faults {
        FaultChoice::Distinct => workload.distinct_faults(conn, 32),
        _ => Vec::new(),
    };
    let fault_of = |i: usize| -> &[(usize, usize)] {
        match sc.faults {
            FaultChoice::SharedOne => &workload.shared_faults[0],
            FaultChoice::Rotate => {
                &workload.shared_faults[(i + conn) % workload.shared_faults.len()]
            }
            FaultChoice::Distinct => &distinct[i % distinct.len()],
        }
    };
    let mut inflight: HashMap<u64, Instant> = HashMap::new();
    let mut sent = 0usize;
    let mut done = 0u64;
    let send_next = |client: &mut Client,
                     sent: &mut usize,
                     inflight: &mut HashMap<u64, Instant>|
     -> Result<(), String> {
        let pairs = workload.request_pairs(*sent + conn * 17, sc.pairs_per_request);
        let t = Instant::now();
        let id = client
            .send(graph_id, fault_of(*sent), pairs)
            .map_err(|e| e.to_string())?;
        inflight.insert(id, t);
        *sent += 1;
        Ok(())
    };
    for _ in 0..depth {
        send_next(client, &mut sent, &mut inflight)?;
    }
    while !inflight.is_empty() {
        let resp = client.recv().map_err(|e| e.to_string())?;
        let t0 = inflight
            .remove(&resp.request_id)
            .ok_or("response for unknown request ID")?;
        if let ResponseBody::Error { code, message } = &resp.body {
            return Err(format!("server error: {code}: {message}"));
        }
        hist.record(t0.elapsed().as_nanos() as u64);
        done += 1;
        if Instant::now() < deadline {
            send_next(client, &mut sent, &mut inflight)?;
        }
    }
    Ok(done)
}

/// One connection's open-loop driver: requests fire on a fixed schedule;
/// latency is measured from the *scheduled* time, so falling behind is
/// charged as latency rather than silently thinning the load.
fn run_open(
    client: &mut Client,
    workload: &Workload,
    sc: &Scenario,
    conn: usize,
    graph_id: &str,
    deadline: Instant,
    hist: &mut LatencyHistogram,
) -> Result<u64, String> {
    let LoopMode::Open { rate } = sc.mode else {
        return Err("run_open on a closed-loop scenario".into());
    };
    let interval = Duration::from_secs_f64(sc.conns as f64 / rate);
    // Stagger connection start offsets so arrivals interleave.
    let mut scheduled = Instant::now() + interval.mul_f64(conn as f64 / sc.conns as f64);
    let mut i = 0usize;
    let mut done = 0u64;
    while scheduled < deadline {
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let faults = &workload.shared_faults[(i + conn) % workload.shared_faults.len()];
        let pairs = workload.request_pairs(i + conn * 17, sc.pairs_per_request);
        client
            .query(graph_id, faults, pairs)
            .map_err(|e| e.to_string())?;
        hist.record(scheduled.elapsed().as_nanos() as u64);
        done += 1;
        i += 1;
        scheduled += interval;
    }
    Ok(done)
}

fn run_scenario(
    addr: SocketAddr,
    graph_id: &str,
    workload: &Workload,
    sc: &Scenario,
    handle: Option<&ServerHandle>,
) -> Result<ScenarioResult, String> {
    let stats_before = handle.map(ftc_net::server::ServerHandle::stats);
    let barrier = Barrier::new(sc.conns + 1);
    let mut t0 = Instant::now();
    let results: Vec<Result<(u64, LatencyHistogram), String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..sc.conns)
            .map(|conn| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    // Warm this connection (and the server's scratch
                    // pool) outside the timed window.
                    client
                        .query(graph_id, &workload.shared_faults[0], &workload.pairs[..1])
                        .map_err(|e| e.to_string())?;
                    let mut hist = LatencyHistogram::new();
                    barrier.wait();
                    let deadline = Instant::now() + sc.duration;
                    let done = match sc.mode {
                        LoopMode::Closed { .. } => run_closed(
                            &mut client,
                            workload,
                            sc,
                            conn,
                            graph_id,
                            deadline,
                            &mut hist,
                        )?,
                        LoopMode::Open { .. } => run_open(
                            &mut client,
                            workload,
                            sc,
                            conn,
                            graph_id,
                            deadline,
                            &mut hist,
                        )?,
                    };
                    Ok((done, hist))
                })
            })
            .collect();
        barrier.wait();
        t0 = Instant::now();
        workers
            .into_iter()
            .map(|w| w.join().unwrap_or_else(|_| Err("worker panicked".into())))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let mut requests = 0u64;
    let mut hist = LatencyHistogram::new();
    for r in results {
        let (done, h) = r?;
        requests += done;
        hist.merge(&h);
    }
    let coalesce = match (
        stats_before,
        handle.map(ftc_net::server::ServerHandle::stats),
    ) {
        (Some(a), Some(b)) => Some((
            b.requests - a.requests,
            b.coalesced - a.coalesced,
            b.batches - a.batches,
        )),
        _ => None,
    };
    Ok(ScenarioResult {
        requests,
        queries: requests * sc.pairs_per_request as u64,
        elapsed,
        hist,
        coalesce,
    })
}

// ---------------------------------------------------------------------------
// overload scenario
// ---------------------------------------------------------------------------

/// Shedding under overdrive: the server is driven past saturation and
/// must reject the excess with `Overloaded` while the requests it *does*
/// accept stay fast.
struct OverloadReport {
    /// Closed-loop saturation throughput of the bounded server (req/s).
    saturation_rps: f64,
    /// Open-loop offered rate of the overdrive phase (≥ 2× saturation).
    offered_rps: f64,
    requests: u64,
    ok: u64,
    shed: u64,
    uncontended_p99_us: f64,
    accepted_p99_us: f64,
    /// `accepted_p99 / uncontended_p99` — ≤ 3 means shedding kept the
    /// accepted path fast instead of queueing everyone into collapse.
    p99_ratio: f64,
}

/// Closed-loop probe against a possibly-shedding server: `conns`
/// serial connections, distinct fault sets (every request builds a
/// session — the expensive regime overload protection exists for).
/// Returns (completed req/s, latency histogram of completed requests).
fn closed_probe(
    addr: SocketAddr,
    graph_id: &str,
    workload: &Workload,
    conns: usize,
    duration: Duration,
) -> Result<(f64, LatencyHistogram), String> {
    let barrier = Barrier::new(conns + 1);
    let mut t0 = Instant::now();
    let results: Vec<Result<(u64, LatencyHistogram), String>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..conns)
            .map(|conn| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    let pool = workload.distinct_faults(conn, 16);
                    let mut hist = LatencyHistogram::new();
                    let mut done = 0u64;
                    barrier.wait();
                    let deadline = Instant::now() + duration;
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        let pairs = workload.request_pairs(i + conn * 17, 4);
                        let t = Instant::now();
                        match client.query(graph_id, &pool[i % pool.len()], pairs) {
                            Ok(_) => {
                                hist.record(t.elapsed().as_nanos() as u64);
                                done += 1;
                            }
                            Err(ClientError::Remote { code, .. }) if code.is_retryable() => {}
                            Err(e) => return Err(e.to_string()),
                        }
                        i += 1;
                    }
                    Ok((done, hist))
                })
            })
            .collect();
        barrier.wait();
        t0 = Instant::now();
        workers
            .into_iter()
            .map(|w| {
                w.join()
                    .unwrap_or_else(|_| Err("probe worker panicked".into()))
            })
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut done = 0u64;
    let mut hist = LatencyHistogram::new();
    for r in results {
        let (d, h) = r?;
        done += d;
        hist.merge(&h);
    }
    Ok((done as f64 / elapsed, hist))
}

fn run_overload_scenario(
    workload: &Workload,
    service: &ConnectivityService,
    graph_id: &str,
    quick: bool,
) -> Result<OverloadReport, String> {
    let probe = if quick {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(1)
    };

    // Probe phase, against an unbounded server: the uncontended p99 (one
    // serial connection) and the saturation throughput (two — matching
    // the open-batch cap of the bounded server below). Distinct fault
    // sets defeat coalescing, so every request is a session build — the
    // expensive regime overload protection exists for.
    let (uncontended, saturation_rps) = {
        let registry = Arc::new(ServiceRegistry::new());
        registry.insert(graph_id.to_string(), service.clone());
        let server = Server::bind(registry, "127.0.0.1:0", ServerConfig::default())
            .map_err(|e| format!("cannot bind loopback: {e}"))?;
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        let (_, _) = closed_probe(addr, graph_id, workload, 1, probe)?;
        // Server-side service latency (frame receipt to answer): both
        // ends of the comparison use the same clock, so loadgen threads
        // competing with the server for (possibly one) CPU cannot smear
        // the baseline or the overdrive tail.
        let uncontended = handle.served_latency();
        let (saturation_rps, _) = closed_probe(addr, graph_id, workload, 2, probe)?;
        handle.shutdown();
        thread
            .join()
            .map_err(|_| "probe server thread panicked")?
            .map_err(|e| format!("probe server failed: {e}"))?;
        (uncontended, saturation_rps)
    };

    // The bounded server under test: one open coalescer batch at a time
    // (admitted requests execute immediately, never stacked), and a
    // request deadline derived from the measured uncontended p99 so
    // accepted requests cannot queue past ~1.5× the uncontended latency
    // — total accepted latency stays within a small multiple of
    // uncontended (deadline-bounded wait + one un-preempted execution).
    let uncontended_p99 =
        Duration::from_nanos(uncontended.quantile(0.99)).max(Duration::from_micros(500));
    let config = ServerConfig {
        max_inflight_batches: 1,
        request_deadline: Some(uncontended_p99.mul_f64(1.5)),
        ..ServerConfig::default()
    };
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert(graph_id.to_string(), service.clone());
    let server = Server::bind(registry, "127.0.0.1:0", config)
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let addr = server.local_addr();
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    // Overdrive: offer 2× saturation open-loop. Sheds return almost
    // instantly (that is the point), so two connections sustain the
    // offered rate: one admitted request executing plus one arrival
    // getting shed, exactly the saturation probe's concurrency — more
    // client threads would just preempt the server's execution on a
    // small host and smear the accepted tail with scheduler noise that
    // no admission policy can remove. Accepted latency comes from the
    // server-side histogram for the same reason.
    let offered_rps = 2.0 * saturation_rps;
    let conns = 2usize;
    let duration = if quick {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(2)
    };
    let interval = Duration::from_secs_f64(conns as f64 / offered_rps);
    let barrier = Barrier::new(conns + 1);
    let results: Vec<Result<(u64, u64, u64, LatencyHistogram), String>> =
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..conns)
                .map(|conn| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                        let pool = workload.distinct_faults(1000 + conn, 16);
                        let (mut requests, mut ok, mut shed) = (0u64, 0u64, 0u64);
                        let mut hist = LatencyHistogram::new();
                        barrier.wait();
                        let deadline = Instant::now() + duration;
                        let mut scheduled =
                            Instant::now() + interval.mul_f64(conn as f64 / conns as f64);
                        let mut i = 0usize;
                        while scheduled < deadline {
                            if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            let pairs = workload.request_pairs(i + conn * 17, 4);
                            let t = Instant::now();
                            requests += 1;
                            match client.query(graph_id, &pool[i % pool.len()], pairs) {
                                Ok(_) => {
                                    hist.record(t.elapsed().as_nanos() as u64);
                                    ok += 1;
                                }
                                Err(ClientError::Remote { code, .. }) if code.is_retryable() => {
                                    shed += 1;
                                }
                                Err(e) => return Err(e.to_string()),
                            }
                            i += 1;
                            scheduled += interval;
                        }
                        Ok((requests, ok, shed, hist))
                    })
                })
                .collect();
            barrier.wait();
            workers
                .into_iter()
                .map(|w| {
                    w.join()
                        .unwrap_or_else(|_| Err("overload worker panicked".into()))
                })
                .collect()
        });

    let accepted = handle.served_latency();
    handle.shutdown();
    thread
        .join()
        .map_err(|_| "overload server thread panicked")?
        .map_err(|e| format!("overload server failed: {e}"))?;

    let (mut requests, mut ok, mut shed) = (0u64, 0u64, 0u64);
    for r in results {
        let (rq, o, sh, _) = r?;
        requests += rq;
        ok += o;
        shed += sh;
    }
    let uncontended_p99_us = uncontended.quantile(0.99) as f64 / 1000.0;
    let accepted_p99_us = accepted.quantile(0.99) as f64 / 1000.0;
    Ok(OverloadReport {
        saturation_rps,
        offered_rps,
        requests,
        ok,
        shed,
        uncontended_p99_us,
        accepted_p99_us,
        p99_ratio: if uncontended_p99_us > 0.0 {
            accepted_p99_us / uncontended_p99_us
        } else {
            0.0
        },
    })
}

// ---------------------------------------------------------------------------
// chaos scenario
// ---------------------------------------------------------------------------

/// Resilient clients vs a deterministic fault injector and live archive
/// swaps: every answered query is checked against a BFS oracle, so the
/// row proves not just liveness but correctness under faults.
struct ChaosReport {
    seed: u64,
    requests: u64,
    ok: u64,
    /// Requests that exhausted the retry budget (counted, not fatal —
    /// under injected resets a small residue is legitimate).
    failed: u64,
    wrong_answers: u64,
    client: ClientStats,
    resets: u64,
    corrupted_bytes: u64,
    stalls: u64,
    swaps: u64,
}

fn run_chaos_scenario(
    workload: &Workload,
    service: &ConnectivityService,
    graph_id: &str,
    quick: bool,
    seed: u64,
) -> Result<ChaosReport, String> {
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert(graph_id.to_string(), service.clone());
    let server = Server::bind(registry.clone(), "127.0.0.1:0", ServerConfig::default())
        .map_err(|e| format!("cannot bind loopback: {e}"))?;
    let upstream = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());
    // Hotter rates than the proxy's defaults: loadgen requests are one
    // wire chunk each way, so per-chunk rates translate directly to
    // per-request event probabilities — these make injected faults a
    // routine part of the run, not a rare tail.
    let mut proxy = ChaosProxy::spawn(
        upstream,
        ChaosConfig {
            seed,
            reset_per_10k: 100,
            corrupt_per_10k: 300,
            stall_per_10k: 300,
            stall: Duration::from_millis(2),
        },
    )
    .map_err(|e| format!("cannot spawn chaos proxy: {e}"))?;
    let proxy_addr = proxy.addr();

    // The oracle: fault endpoints resolved to edge IDs once per shared
    // fault set; every answered pair is BFS-checked against them.
    let fault_edges: Vec<Vec<usize>> = workload
        .shared_faults
        .iter()
        .map(|faults| {
            faults
                .iter()
                .map(|&(u, v)| {
                    workload
                        .graph
                        .find_edge(u, v)
                        .ok_or_else(|| format!("workload fault ({u}, {v}) is not an edge"))
                })
                .collect::<Result<_, _>>()
        })
        .collect::<Result<_, _>>()?;

    let duration = if quick {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(2)
    };
    let conns = 2usize;
    let stop = AtomicBool::new(false);
    let swaps = AtomicU64::new(0);

    // (requests, ok, failed, wrong answers, client-side recovery stats)
    type WorkerTally = (u64, u64, u64, u64, ClientStats);
    let results: Vec<Result<WorkerTally, String>> = std::thread::scope(|scope| {
        // Blue/green churn: keep swapping an equivalent service in
        // while the queries fly. In-flight queries finish on the
        // handle they resolved; answers must stay correct throughout.
        let swapper = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
                registry.swap(graph_id.to_string(), service.clone());
                swaps.fetch_add(1, Ordering::Relaxed);
            }
        });
        let workers: Vec<_> = (0..conns)
            .map(|conn| {
                let fault_edges = &fault_edges;
                scope.spawn(move || {
                    let config = ClientConfig {
                        jitter_seed: seed ^ (conn as u64 + 1),
                        ..ClientConfig::resilient()
                    };
                    let mut client = Client::connect_with(proxy_addr, config.clone())
                        .map_err(|e| e.to_string())?;
                    let (mut requests, mut ok, mut failed, mut wrong) = (0u64, 0u64, 0u64, 0u64);
                    let mut stats = ClientStats::default();
                    let deadline = Instant::now() + duration;
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        let fi = (i + conn) % workload.shared_faults.len();
                        let pairs = workload.request_pairs(i + conn * 17, 4);
                        requests += 1;
                        match client.query(graph_id, &workload.shared_faults[fi], pairs) {
                            Ok(answers) => {
                                ok += 1;
                                for (&(s, t), &got) in pairs.iter().zip(&answers) {
                                    let want = connectivity::connected_avoiding(
                                        &workload.graph,
                                        s,
                                        t,
                                        &fault_edges[fi],
                                    );
                                    if got != want {
                                        wrong += 1;
                                    }
                                }
                            }
                            Err(_) => {
                                // Retry budget exhausted; rebuild the
                                // connection and carry on.
                                failed += 1;
                                stats = sum_stats(stats, client.stats());
                                client = Client::connect_with(proxy_addr, config.clone())
                                    .map_err(|e| e.to_string())?;
                            }
                        }
                        i += 1;
                    }
                    stats = sum_stats(stats, client.stats());
                    Ok((requests, ok, failed, wrong, stats))
                })
            })
            .collect();
        let out = workers
            .into_iter()
            .map(|w| {
                w.join()
                    .unwrap_or_else(|_| Err("chaos worker panicked".into()))
            })
            .collect();
        stop.store(true, Ordering::Relaxed);
        swapper.join().expect("swapper thread");
        out
    });

    proxy.shutdown();
    handle.shutdown();
    server_thread
        .join()
        .map_err(|_| "chaos server thread panicked")?
        .map_err(|e| format!("chaos server failed: {e}"))?;

    let (mut requests, mut ok, mut failed, mut wrong) = (0u64, 0u64, 0u64, 0u64);
    let mut client = ClientStats::default();
    for r in results {
        let (rq, o, f, w, st) = r?;
        requests += rq;
        ok += o;
        failed += f;
        wrong += w;
        client = sum_stats(client, st);
    }
    let chaos = proxy.stats();
    Ok(ChaosReport {
        seed,
        requests,
        ok,
        failed,
        wrong_answers: wrong,
        client,
        resets: chaos.resets,
        corrupted_bytes: chaos.corrupted_bytes,
        stalls: chaos.stalls,
        swaps: swaps.load(Ordering::Relaxed),
    })
}

fn sum_stats(a: ClientStats, b: ClientStats) -> ClientStats {
    ClientStats {
        reconnects: a.reconnects + b.reconnects,
        retries: a.retries + b.retries,
        replayed: a.replayed + b.replayed,
    }
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

fn render_json(
    mode: &str,
    server: &str,
    workload: &Workload,
    rows: &[(Scenario, ScenarioResult)],
    overload: Option<&OverloadReport>,
    chaos: Option<&ChaosReport>,
) -> String {
    let cores = std::thread::available_parallelism().map_or(0, |p| p.get());
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"ftc-perf-net/v1\",\n");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"cores\": {cores},");
    let _ = writeln!(s, "  \"server\": \"{server}\",");
    let _ = writeln!(
        s,
        "  \"workload\": \"random_connected({n}, {m}, seed 7), f = {f}, archive-backed service over loopback TCP; latency per request, open-loop measured from scheduled send\",",
        n = workload.graph.n(),
        m = 3 * workload.graph.n(),
        f = workload.f
    );
    s.push_str("  \"results\": [\n");
    for (i, (sc, r)) in rows.iter().enumerate() {
        let (mode_str, depth, rate) = match sc.mode {
            LoopMode::Closed { depth } => ("closed", depth, 0.0),
            LoopMode::Open { rate } => ("open", 1, rate),
        };
        let _ = write!(
            s,
            "    {{\"scenario\": \"{}\", \"loop\": \"{mode_str}\", \"conns\": {}, \"depth\": {depth}, \"rate\": {rate:.0}, \"pairs_per_request\": {}, \"requests\": {}, \"queries\": {}, \"requests_per_sec\": {:.1}, \"queries_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}",
            sc.name,
            sc.conns,
            sc.pairs_per_request,
            r.requests,
            r.queries,
            r.requests as f64 / r.elapsed,
            r.queries as f64 / r.elapsed,
            us(r.hist.quantile(0.50)),
            us(r.hist.quantile(0.95)),
            us(r.hist.quantile(0.99)),
            us(r.hist.max()),
        );
        if let Some((req, coal, batches)) = r.coalesce {
            let _ = write!(
                s,
                ", \"coalesce\": {{\"requests\": {req}, \"coalesced\": {coal}, \"batches\": {batches}}}"
            );
        }
        s.push('}');
        let last = i + 1 == rows.len() && overload.is_none() && chaos.is_none();
        s.push_str(if last { "\n" } else { ",\n" });
    }
    if let Some(o) = overload {
        let _ = write!(
            s,
            "    {{\"scenario\": \"overload\", \"loop\": \"open\", \"saturation_rps\": {:.1}, \"offered_rps\": {:.1}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \"uncontended_p99_us\": {:.1}, \"accepted_p99_us\": {:.1}, \"p99_ratio\": {:.2}}}",
            o.saturation_rps,
            o.offered_rps,
            o.requests,
            o.ok,
            o.shed,
            o.uncontended_p99_us,
            o.accepted_p99_us,
            o.p99_ratio,
        );
        s.push_str(if chaos.is_none() { "\n" } else { ",\n" });
    }
    if let Some(c) = chaos {
        let _ = writeln!(
            s,
            "    {{\"scenario\": \"chaos\", \"seed\": {}, \"requests\": {}, \"ok\": {}, \"failed\": {}, \"wrong_answers\": {}, \"reconnects\": {}, \"retries\": {}, \"replayed\": {}, \"resets\": {}, \"corrupted_bytes\": {}, \"stalls\": {}, \"swaps\": {}}}",
            c.seed,
            c.requests,
            c.ok,
            c.failed,
            c.wrong_answers,
            c.client.reconnects,
            c.client.retries,
            c.client.replayed,
            c.resets,
            c.corrupted_bytes,
            c.stalls,
            c.swaps,
        );
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal structural self-check so CI fails loudly on malformed output
/// (same shape as `perf_report`'s: schema tag, row count, finiteness,
/// brace balance — the offline environment has no JSON parser).
fn validate(json: &str, rows: usize) -> Result<(), String> {
    if !json.contains("\"schema\": \"ftc-perf-net/v1\"") {
        return Err("missing schema tag".into());
    }
    if json.matches("\"scenario\": ").count() != rows {
        return Err("result row count mismatch".into());
    }
    if json.contains("NaN") || json.contains("inf") {
        return Err("non-finite measurement".into());
    }
    let (mut depth, mut max_depth) = (0i64, 0i64);
    for b in json.bytes() {
        match b {
            b'{' | b'[' => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            b'}' | b']' => depth -= 1,
            _ => {}
        }
    }
    if depth != 0 || max_depth < 2 {
        return Err("unbalanced JSON".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

fn usage() -> String {
    "usage: ftc-loadgen [--quick] [--addr HOST:PORT] [--graph-id ID] [--out PATH] [--emit-graph PATH] [--mode closed|open] [--conns N] [--depth N] [--pairs N] [--rate R] [--duration-ms N] [--overload] [--chaos] [--chaos-seed N]".into()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut addr: Option<String> = None;
    let mut graph_id = "loadgen".to_string();
    let mut out = "BENCH_net.json".to_string();
    let mut emit_graph: Option<String> = None;
    let mut custom_mode: Option<String> = None;
    let mut custom_conns: Option<usize> = None;
    let mut custom_depth: Option<usize> = None;
    let mut custom_pairs: Option<usize> = None;
    let mut custom_rate: Option<f64> = None;
    let mut custom_duration: Option<u64> = None;
    let mut want_overload = false;
    let mut want_chaos = false;
    let mut chaos_seed: u64 = 0xC4A0_5EED;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{what} expects a value"))
        };
        match a.as_str() {
            "--quick" => quick = true,
            "--addr" => addr = Some(value("--addr")?),
            "--graph-id" => graph_id = value("--graph-id")?,
            "--out" => out = value("--out")?,
            "--emit-graph" => emit_graph = Some(value("--emit-graph")?),
            "--mode" => custom_mode = Some(value("--mode")?),
            "--conns" => custom_conns = Some(parse_num(&value("--conns")?, "--conns")?),
            "--depth" => custom_depth = Some(parse_num(&value("--depth")?, "--depth")?),
            "--pairs" => custom_pairs = Some(parse_num(&value("--pairs")?, "--pairs")?),
            "--rate" => {
                custom_rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|_| "--rate expects a number")?,
                );
            }
            "--duration-ms" => {
                custom_duration = Some(parse_num(&value("--duration-ms")?, "--duration-ms")? as u64)
            }
            "--overload" => want_overload = true,
            "--chaos" => want_chaos = true,
            "--chaos-seed" => {
                chaos_seed = value("--chaos-seed")?
                    .parse()
                    .map_err(|_| "--chaos-seed expects an integer")?;
            }
            _ => return Err(usage()),
        }
    }

    let workload = Workload::new(quick);

    if let Some(path) = emit_graph {
        let mut text = String::new();
        let _ = writeln!(
            text,
            "# ftc-loadgen workload graph ({}): random_connected(n = {}, extra = {}, seed 7)",
            if quick { "quick" } else { "full" },
            workload.graph.n(),
            3 * workload.graph.n()
        );
        for (_, u, v) in workload.graph.edge_iter() {
            let _ = writeln!(text, "{u} {v}");
        }
        std::fs::write(&path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!(
            "wrote workload edge list to {path}; build with: ftc-cli build {path} labels.ftc --f {}",
            workload.f
        );
        return Ok(());
    }

    // Scenario list: the fixed suite, or one custom scenario if any
    // shape knob was given.
    let scenarios = if custom_mode.is_some()
        || custom_conns.is_some()
        || custom_depth.is_some()
        || custom_pairs.is_some()
        || custom_rate.is_some()
        || custom_duration.is_some()
    {
        let mode = match custom_mode.as_deref() {
            None | Some("closed") => LoopMode::Closed {
                depth: custom_depth.unwrap_or(1),
            },
            Some("open") => LoopMode::Open {
                rate: custom_rate.unwrap_or(1000.0),
            },
            Some(other) => return Err(format!("unknown --mode '{other}'")),
        };
        vec![Scenario {
            name: "custom",
            mode,
            conns: custom_conns.unwrap_or(4),
            pairs_per_request: custom_pairs.unwrap_or(16),
            faults: FaultChoice::Rotate,
            duration: Duration::from_millis(custom_duration.unwrap_or(2000)),
        }]
    } else {
        suite(quick)
    };

    if addr.is_some() && (want_overload || want_chaos) {
        return Err("--overload/--chaos drive their own in-process servers; drop --addr".into());
    }

    // The target: an external server, or an in-process one over the
    // workload archive (same serving path as the standalone binary).
    // The built service is kept for the overload/chaos scenarios, which
    // spawn their own (bounded / chaos-proxied) servers over it.
    let (target, handle, server_thread, extra_service) = match &addr {
        Some(a) => {
            let target: SocketAddr = a
                .parse()
                .map_err(|_| format!("--addr expects HOST:PORT, got '{a}'"))?;
            (target, None, None, None)
        }
        None => {
            eprintln!(
                "building workload labels (n = {}, f = {}) …",
                workload.graph.n(),
                workload.f
            );
            let scheme = FtcScheme::build(&workload.graph, &Params::deterministic(workload.f))
                .map_err(|e| e.to_string())?;
            let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full);
            let service =
                ConnectivityService::from_archive_bytes(blob).map_err(|e| e.to_string())?;
            let registry = Arc::new(ServiceRegistry::new());
            registry.insert(graph_id.clone(), service.clone());
            let server = Server::bind(registry, "127.0.0.1:0", ServerConfig::default())
                .map_err(|e| format!("cannot bind loopback: {e}"))?;
            let target = server.local_addr();
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run());
            (target, Some(handle), Some(thread), Some(service))
        }
    };

    let mut rows = Vec::new();
    for sc in scenarios {
        eprintln!("scenario {} …", sc.name);
        let result = run_scenario(target, &graph_id, &workload, &sc, handle.as_ref())?;
        rows.push((sc, result));
    }

    if let (Some(handle), Some(thread)) = (handle, server_thread) {
        handle.shutdown();
        thread
            .join()
            .map_err(|_| "server thread panicked")?
            .map_err(|e| format!("server failed: {e}"))?;
    }

    let overload = if want_overload {
        let service = extra_service.as_ref().expect("in-process service");
        eprintln!("scenario overload …");
        Some(run_overload_scenario(&workload, service, &graph_id, quick)?)
    } else {
        None
    };
    let chaos = if want_chaos {
        let service = extra_service.as_ref().expect("in-process service");
        eprintln!("scenario chaos (seed {chaos_seed}) …");
        Some(run_chaos_scenario(
            &workload, service, &graph_id, quick, chaos_seed,
        )?)
    } else {
        None
    };

    let mode = if quick { "quick" } else { "full" };
    let server = if addr.is_some() {
        "external"
    } else {
        "in-process"
    };
    let json = render_json(
        mode,
        server,
        &workload,
        &rows,
        overload.as_ref(),
        chaos.as_ref(),
    );
    let row_count = rows.len() + usize::from(overload.is_some()) + usize::from(chaos.is_some());
    validate(&json, row_count).map_err(|e| format!("generated report failed validation: {e}"))?;
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {out}: {e}"))?;

    for (sc, r) in &rows {
        println!(
            "{:<18} {:>9.0} queries/s {:>8.0} req/s   p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us",
            sc.name,
            r.queries as f64 / r.elapsed,
            r.requests as f64 / r.elapsed,
            r.hist.quantile(0.50) as f64 / 1000.0,
            r.hist.quantile(0.95) as f64 / 1000.0,
            r.hist.quantile(0.99) as f64 / 1000.0,
        );
        if let Some((req, coal, batches)) = r.coalesce {
            println!(
                "{:<18} coalesce: {req} requests, {coal} coalesced, {batches} sessions built",
                ""
            );
        }
    }
    if let Some(o) = &overload {
        println!(
            "{:<18} offered {:.0} req/s (2x saturation {:.0}): {} ok, {} shed; accepted p99 {:.1}us = {:.2}x uncontended p99 {:.1}us",
            "overload",
            o.offered_rps,
            o.saturation_rps,
            o.ok,
            o.shed,
            o.accepted_p99_us,
            o.p99_ratio,
            o.uncontended_p99_us,
        );
    }
    if let Some(c) = &chaos {
        println!(
            "{:<18} seed {}: {} requests, {} ok, {} failed, {} wrong; {} reconnects, {} retries, {} replayed; injected {} resets, {} corrupted bytes, {} stalls across {} swaps",
            "chaos",
            c.seed,
            c.requests,
            c.ok,
            c.failed,
            c.wrong_answers,
            c.client.reconnects,
            c.client.retries,
            c.client.replayed,
            c.resets,
            c.corrupted_bytes,
            c.stalls,
            c.swaps,
        );
        if c.wrong_answers > 0 {
            return Err(format!(
                "{} wrong answers under chaos — correctness violation",
                c.wrong_answers
            ));
        }
    }
    println!("wrote {out}");
    Ok(())
}

fn parse_num(s: &str, what: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("{what} expects an integer"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

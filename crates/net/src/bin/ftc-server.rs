//! `ftc-server` — serve connectivity label archives over TCP.
//!
//! ```text
//! ftc-server <id>=<labels.ftc> [<id>=<labels.ftc> ...]
//!            [--addr HOST:PORT] [--no-coalesce] [--max-connections N]
//!            [--max-inflight N] [--deadline-ms N]
//! ```
//!
//! Each `id=path` registers one archive under a graph ID; clients route
//! requests by that ID. Binds `--addr` (default `127.0.0.1:0` — an
//! OS-assigned port), prints exactly one `listening on <addr>` line to
//! stdout once ready (scripts parse it), and serves until SIGINT or
//! SIGTERM, which drain in-flight requests — including coalesced
//! batches — before exiting.
//!
//! **SIGHUP** performs a blue/green reload: every `id=path` archive is
//! re-opened from disk and atomically swapped into the registry while
//! the server keeps answering. In-flight queries finish against the
//! service they resolved (the old mapping stays alive until its last
//! Arc drops); new requests see the fresh archive. One
//! `reloaded "<id>" generation <g>` line per archive goes to stderr. A
//! path that fails to re-open is reported and the previous archive
//! keeps serving — a reload can never take a graph down.
//!
//! Overload protection sheds instead of queueing: `--max-connections`
//! bounds handler threads (excess connections get one `Overloaded`
//! error frame and are closed), `--max-inflight` bounds concurrently
//! open coalescer batches, and `--deadline-ms` bounds how long a
//! request may wait before it is shed. Coalescer and shed counters go
//! to stderr on exit.

use ftc_net::server::{install_signal_handlers, Server, ServerConfig};
use ftc_serve::ServiceRegistry;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> String {
    "usage: ftc-server <id>=<labels.ftc> [...] [--addr HOST:PORT] [--no-coalesce] \
     [--max-connections N] [--max-inflight N] [--deadline-ms N]"
        .into()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut graphs: Vec<(String, String)> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr expects HOST:PORT")?.clone(),
            "--no-coalesce" => config.coalesce = false,
            "--max-connections" => {
                config.max_connections = it
                    .next()
                    .ok_or("--max-connections expects an integer")?
                    .parse()
                    .map_err(|_| "--max-connections expects an integer")?;
            }
            "--max-inflight" => {
                config.max_inflight_batches = it
                    .next()
                    .ok_or("--max-inflight expects an integer")?
                    .parse()
                    .map_err(|_| "--max-inflight expects an integer")?;
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--deadline-ms expects milliseconds")?
                    .parse()
                    .map_err(|_| "--deadline-ms expects milliseconds")?;
                config.request_deadline = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => return Err(usage()),
            spec => {
                let (id, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected <id>=<labels.ftc>, got '{spec}'"))?;
                if id.is_empty() {
                    return Err(format!("empty graph ID in '{spec}'"));
                }
                graphs.push((id.to_string(), path.to_string()));
            }
        }
    }
    if graphs.is_empty() {
        return Err(usage());
    }

    let registry = Arc::new(ServiceRegistry::new());
    for (id, path) in &graphs {
        let service = registry.open_path(id, path).map_err(|e| e.to_string())?;
        eprintln!(
            "registered \"{id}\": n = {}, m = {} ({path})",
            service.n(),
            service.m()
        );
    }

    let server =
        Server::bind(registry, &addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let handle = server.handle();

    // SIGHUP: blue/green reload of every registered archive from its
    // original path. Swaps are per-archive atomic; a failed re-open
    // leaves the previous service in place.
    let reload_registry = handle.registry().clone();
    let reload_graphs = graphs.clone();
    install_signal_handlers(
        handle.clone(),
        Some(Box::new(move || {
            for (id, path) in &reload_graphs {
                match ftc_serve::ConnectivityService::open_path(path) {
                    Ok(service) => {
                        let generation = reload_registry.swap(id.clone(), service);
                        eprintln!("reloaded \"{id}\" generation {generation} ({path})");
                    }
                    Err(e) => {
                        eprintln!("reload of \"{id}\" failed, keeping previous archive: {e}");
                    }
                }
            }
        })),
    );

    // The readiness line scripts wait for; flush so piped readers see it.
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot write: {e}"))?;

    server.run().map_err(|e| format!("serving failed: {e}"))?;

    let stats = handle.stats();
    let srv = handle.server_stats();
    eprintln!(
        "drained: {} requests ({} coalesced) in {} batches, {} pairs answered; \
         {} connections accepted, {} shed at the connection cap, {} requests shed",
        stats.requests,
        stats.coalesced,
        stats.batches,
        stats.pairs,
        srv.accepted,
        srv.shed_connections,
        stats.shed
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

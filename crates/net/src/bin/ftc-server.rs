//! `ftc-server` — serve connectivity label archives over TCP.
//!
//! ```text
//! ftc-server <id>=<labels.ftc> [<id>=<labels.ftc> ...]
//!            [--addr HOST:PORT] [--no-coalesce] [--max-connections N]
//! ```
//!
//! Each `id=path` registers one archive under a graph ID; clients route
//! requests by that ID. Binds `--addr` (default `127.0.0.1:0` — an
//! OS-assigned port), prints exactly one `listening on <addr>` line to
//! stdout once ready (scripts parse it), and serves until SIGINT or
//! SIGTERM, which drain in-flight requests — including coalesced
//! batches — before exiting. Coalescer counters go to stderr on exit.

use ftc_net::server::{install_signal_shutdown, Server, ServerConfig};
use ftc_serve::ServiceRegistry;
use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> String {
    "usage: ftc-server <id>=<labels.ftc> [...] [--addr HOST:PORT] [--no-coalesce] [--max-connections N]"
        .into()
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut graphs: Vec<(String, String)> = Vec::new();
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServerConfig::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr expects HOST:PORT")?.clone(),
            "--no-coalesce" => config.coalesce = false,
            "--max-connections" => {
                config.max_connections = it
                    .next()
                    .ok_or("--max-connections expects an integer")?
                    .parse()
                    .map_err(|_| "--max-connections expects an integer")?;
            }
            "--help" | "-h" => return Err(usage()),
            spec => {
                let (id, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("expected <id>=<labels.ftc>, got '{spec}'"))?;
                if id.is_empty() {
                    return Err(format!("empty graph ID in '{spec}'"));
                }
                graphs.push((id.to_string(), path.to_string()));
            }
        }
    }
    if graphs.is_empty() {
        return Err(usage());
    }

    let registry = Arc::new(ServiceRegistry::new());
    for (id, path) in &graphs {
        let service = registry.open_path(id, path).map_err(|e| e.to_string())?;
        eprintln!(
            "registered \"{id}\": n = {}, m = {} ({path})",
            service.n(),
            service.m()
        );
    }

    let server =
        Server::bind(registry, &addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let handle = server.handle();
    install_signal_shutdown(handle.clone());

    // The readiness line scripts wait for; flush so piped readers see it.
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot write: {e}"))?;

    server.run().map_err(|e| format!("serving failed: {e}"))?;

    let stats = handle.stats();
    eprintln!(
        "drained: {} requests ({} coalesced) in {} batches, {} pairs answered",
        stats.requests, stats.coalesced, stats.batches, stats.pairs
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

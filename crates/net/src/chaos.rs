//! Deterministic fault injection: a seeded TCP chaos proxy.
//!
//! [`ChaosProxy`] sits between a client and a server on loopback and
//! forwards bytes both ways, injecting three failure modes with
//! seeded, reproducible dice rolls:
//!
//! * **connection resets** — the proxy abruptly closes both sides
//!   mid-stream, exercising client reconnect + replay;
//! * **byte corruption** — one forwarded byte is flipped, which the
//!   frame checksums must surface as a typed `BadFrame` /
//!   `ChecksumMismatch` error (never a silently wrong answer, never a
//!   desynced stream);
//! * **stalls / partial writes** — a chunk is split and delayed,
//!   exercising read timeouts and mid-frame patience.
//!
//! Randomness is a hand-rolled [`SplitMix64`] (the dependency tree has
//! no RNG crate, by design): every connection derives its own stream
//! from the proxy seed and a connection counter, so a given seed
//! reproduces the same injection decisions per connection index
//! regardless of thread scheduling.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A tiny, dependency-free deterministic RNG (SplitMix64). Used by the
/// chaos proxy's injection dice and the client's retry jitter.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// An RNG producing the stream determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A seeded dice roll: `true` with probability `per_10k / 10_000`.
    pub fn chance(&mut self, per_10k: u32) -> bool {
        per_10k > 0 && self.next_u64() % 10_000 < u64::from(per_10k)
    }
}

/// Injection rates and shapes of one [`ChaosProxy`]. Rates are per
/// forwarded chunk, in parts per 10 000.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed for all injection decisions. The same seed and connection
    /// arrival order reproduce the same per-connection decisions.
    pub seed: u64,
    /// Chance (per chunk) of resetting the connection mid-stream.
    pub reset_per_10k: u32,
    /// Chance (per chunk) of flipping one forwarded byte.
    pub corrupt_per_10k: u32,
    /// Chance (per chunk) of a stalled, split write.
    pub stall_per_10k: u32,
    /// How long a stalled chunk pauses between its two halves.
    pub stall: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0xC4A0_5EED,
            reset_per_10k: 50,
            corrupt_per_10k: 50,
            stall_per_10k: 100,
            stall: Duration::from_millis(5),
        }
    }
}

/// A snapshot of a proxy's lifetime injection counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections proxied.
    pub connections: u64,
    /// Connections torn down by an injected reset.
    pub resets: u64,
    /// Bytes flipped in flight.
    pub corrupted_bytes: u64,
    /// Chunks delivered as a stalled, split write.
    pub stalls: u64,
    /// Payload bytes forwarded (both directions).
    pub forwarded_bytes: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    resets: AtomicU64,
    corrupted_bytes: AtomicU64,
    stalls: AtomicU64,
    forwarded_bytes: AtomicU64,
}

struct ProxyShared {
    stop: AtomicBool,
    counters: Counters,
    config: ChaosConfig,
    upstream: SocketAddr,
}

/// A running loopback chaos proxy; accepts on its own port and pipes
/// every connection to `upstream` through the injection pumps.
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds a fresh loopback port and starts proxying to `upstream`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(upstream: SocketAddr, config: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            config,
            upstream,
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ChaosProxy {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here instead of at the
    /// server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime injection counters.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.shared.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            corrupted_bytes: c.corrupted_bytes.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
            forwarded_bytes: c.forwarded_bytes.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and tears down the pumps. Idempotent; called on
    /// drop as well.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ProxyShared>) {
    let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut conn_index: u64 = 0;
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((down, _peer)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let Ok(up) = TcpStream::connect(shared.upstream) else {
                    // Upstream gone (e.g. mid-drain): drop the client,
                    // which sees a failed connection and retries.
                    continue;
                };
                let _ = down.set_nodelay(true);
                let _ = up.set_nodelay(true);
                // One deterministic dice stream per direction, derived
                // from (seed, connection index): scheduling cannot change
                // what a given connection's pumps decide.
                for (dir, from, to) in [(0u64, &down, &up), (1u64, &up, &down)] {
                    let (Ok(from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
                        continue;
                    };
                    let rng = SplitMix64::new(
                        shared
                            .config
                            .seed
                            .wrapping_add(conn_index.wrapping_mul(0x9E37_79B9))
                            .wrapping_add(dir),
                    );
                    let shared = shared.clone();
                    pumps.push(std::thread::spawn(move || pump(from, to, rng, &shared)));
                }
                conn_index += 1;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
    for t in pumps {
        let _ = t.join();
    }
}

/// Forwards one direction of one connection, rolling the injection dice
/// once per chunk.
fn pump(mut from: TcpStream, mut to: TcpStream, mut rng: SplitMix64, shared: &ProxyShared) {
    let cfg = &shared.config;
    let counters = &shared.counters;
    if from
        .set_read_timeout(Some(Duration::from_millis(20)))
        .is_err()
    {
        return;
    }
    let mut buf = [0u8; 2048];
    loop {
        if shared.stop.load(Ordering::Acquire) {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Propagate the half-close so frame boundaries survive.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        };
        let chunk = &mut buf[..n];
        if rng.chance(cfg.reset_per_10k) {
            counters.resets.fetch_add(1, Ordering::Relaxed);
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        if rng.chance(cfg.corrupt_per_10k) {
            let at = (rng.next_u64() as usize) % n;
            // Flip at least one bit, never zero.
            let mask = (rng.next_u64() as u8) | 1;
            chunk[at] ^= mask;
            counters.corrupted_bytes.fetch_add(1, Ordering::Relaxed);
        }
        let stalled = rng.chance(cfg.stall_per_10k) && n > 1;
        let write_ok = if stalled {
            counters.stalls.fetch_add(1, Ordering::Relaxed);
            let split = 1 + (rng.next_u64() as usize) % (n - 1);
            to.write_all(&chunk[..split]).is_ok() && {
                std::thread::sleep(cfg.stall);
                to.write_all(&chunk[split..]).is_ok()
            }
        } else {
            to.write_all(chunk).is_ok()
        };
        if !write_ok {
            let _ = from.shutdown(Shutdown::Both);
            return;
        }
        counters
            .forwarded_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Different seeds diverge immediately.
        assert_ne!(SplitMix64::new(8).next_u64(), xs[0]);
        // chance() respects the edges.
        let mut r = SplitMix64::new(3);
        assert!(!(0..1000).any(|_| r.chance(0)));
        assert!((0..1000).all(|_| r.chance(10_000)));
    }

    #[test]
    fn clean_proxy_forwards_transparently() {
        // With all rates at zero the proxy is a plain byte pipe.
        let upstream = TcpListener::bind("127.0.0.1:0").unwrap();
        let up_addr = upstream.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut s, _) = upstream.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = s.read(&mut buf).unwrap();
            s.write_all(&buf[..n]).unwrap();
        });
        let mut proxy = ChaosProxy::spawn(
            up_addr,
            ChaosConfig {
                reset_per_10k: 0,
                corrupt_per_10k: 0,
                stall_per_10k: 0,
                ..ChaosConfig::default()
            },
        )
        .unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.write_all(b"ping through the pipe").unwrap();
        let mut got = [0u8; 21];
        c.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"ping through the pipe");
        echo.join().unwrap();
        proxy.shutdown();
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.resets + stats.corrupted_bytes + stats.stalls, 0);
        assert!(stats.forwarded_bytes >= 42);
    }
}

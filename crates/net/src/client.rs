//! The blocking client: one TCP connection, pipelined request IDs.
//!
//! [`Client::query`] is the simple call-and-wait surface. For
//! throughput, [`Client::send`] / [`Client::recv`] decouple submission
//! from completion: keep several request IDs in flight and match
//! responses by the echoed ID (the server answers a connection's frames
//! in order, but pipelined consumers should not rely on it — coalescing
//! servers are free to change that).

use crate::proto::{
    self, EncodeError, ErrorCode, ProtoError, Response, ResponseBody, WireCertificate,
    FLAG_CERTIFICATES, MAX_FRAME_BYTES,
};
use crate::text;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// Errors raised on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (includes the server closing mid-response).
    Io(std::io::Error),
    /// The server's bytes did not parse as a response frame.
    Proto(ProtoError),
    /// A request could not be encoded (argument exceeds a wire field).
    Encode(EncodeError),
    /// The server answered with a typed error frame.
    Remote {
        /// Echoed request ID (0 when the server could not parse one).
        request_id: u64,
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A text-mode query line did not parse.
    Text(text::TextError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "malformed response: {e}"),
            ClientError::Encode(e) => write!(f, "cannot encode request: {e}"),
            ClientError::Remote { code, message, .. } => write!(f, "server: {code}: {message}"),
            ClientError::Text(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<EncodeError> for ClientError {
    fn from(e: EncodeError) -> ClientError {
        ClientError::Encode(e)
    }
}

impl From<text::TextError> for ClientError {
    fn from(e: text::TextError) -> ClientError {
        ClientError::Text(e)
    }
}

/// A blocking `ftc-net` connection.
pub struct Client {
    stream: TcpStream,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    next_id: u64,
}

impl Client {
    /// Connects (TCP, `TCP_NODELAY`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            next_id: 1,
        })
    }

    /// The remote address.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    fn send_flags(
        &mut self,
        graph: &str,
        flags: u16,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.wbuf.clear();
        proto::encode_request(&mut self.wbuf, id, graph, flags, faults, pairs)?;
        self.stream.write_all(&self.wbuf)?;
        Ok(id)
    }

    /// Pipelines one request; returns its request ID without waiting.
    ///
    /// # Errors
    ///
    /// [`ClientError::Encode`] / [`ClientError::Io`] on submission
    /// failures.
    pub fn send(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<u64, ClientError> {
        self.send_flags(graph, 0, faults, pairs)
    }

    /// Blocks for the next response frame (any request ID). Typed
    /// server errors come back as [`ResponseBody::Error`], not `Err` —
    /// pipelined callers must see per-request failures without losing
    /// the stream.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Proto`] when the connection
    /// or the framing itself fails.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_BYTES {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{len}-byte response frame exceeds the cap"),
            )));
        }
        self.rbuf.resize(len as usize, 0);
        self.stream.read_exact(&mut self.rbuf)?;
        Ok(proto::decode_response(&self.rbuf)?)
    }

    fn call(
        &mut self,
        graph: &str,
        flags: u16,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Response, ClientError> {
        let id = self.send_flags(graph, flags, faults, pairs)?;
        loop {
            let resp = self.recv()?;
            if resp.request_id != id {
                // A stale pipelined response (e.g. after an earlier
                // error was abandoned); skip to ours.
                continue;
            }
            if let ResponseBody::Error { code, message } = resp.body {
                return Err(ClientError::Remote {
                    request_id: id,
                    code,
                    message,
                });
            }
            return Ok(resp);
        }
    }

    /// Answers `pairs` under `faults` on `graph`: one `bool` per pair,
    /// in request order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] for typed server errors, transport
    /// variants otherwise.
    pub fn query(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Vec<bool>, ClientError> {
        match self.call(graph, 0, faults, pairs)?.body {
            ResponseBody::Answers { answers, .. } => Ok(answers),
            ResponseBody::Error { .. } => unreachable!("call() surfaces error bodies"),
        }
    }

    /// Like [`Client::query`], also returning the merge certificate per
    /// connected pair.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::query`].
    #[allow(clippy::type_complexity)]
    pub fn query_certified(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<(Vec<bool>, Vec<Option<WireCertificate>>), ClientError> {
        match self.call(graph, FLAG_CERTIFICATES, faults, pairs)?.body {
            ResponseBody::Answers {
                answers,
                certificates,
            } => {
                let certificates = certificates.unwrap_or_else(|| vec![None; answers.len()]);
                Ok((answers, certificates))
            }
            ResponseBody::Error { .. } => unreachable!("call() surfaces error bodies"),
        }
    }

    /// Text-mode debug tooling: answers one `s t [u:v ...]` query line
    /// (the `ftc-cli serve` grammar, parsed by [`text::parse_query_line`])
    /// over the binary protocol, returning the formatted answer line.
    /// `Ok(None)` for blank/comment lines.
    ///
    /// # Errors
    ///
    /// [`ClientError::Text`] on grammar errors, the [`Client::query`]
    /// conditions otherwise.
    pub fn query_line(&mut self, graph: &str, line: &str) -> Result<Option<String>, ClientError> {
        let Some(q) = text::parse_query_line(line)? else {
            return Ok(None);
        };
        let answers = self.query(graph, &q.faults, &[(q.s, q.t)])?;
        Ok(Some(text::answer_line(q.s, q.t, answers[0])))
    }
}

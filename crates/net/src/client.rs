//! The blocking client: one TCP connection, pipelined request IDs,
//! optional transparent resilience.
//!
//! [`Client::query`] is the simple call-and-wait surface. For
//! throughput, [`Client::send`] / [`Client::recv`] decouple submission
//! from completion: keep several request IDs in flight and match
//! responses by the echoed ID (the server answers a connection's frames
//! in order, but pipelined consumers should not rely on it — coalescing
//! servers are free to change that).
//!
//! # Resilience
//!
//! With [`ClientConfig::retries`] > 0 the client becomes
//! self-healing: connect failures, dropped connections, corrupted
//! response frames, and retryable error codes (`Overloaded`,
//! `ShuttingDown`) are retried with bounded exponential backoff and
//! deterministic jitter. A reconnect **replays every unanswered
//! pipelined request with its original request ID**, so a pipelined
//! consumer's bookkeeping survives the swap of the underlying socket
//! unchanged. Every request is sent with the integrity-checksum flag,
//! so in-flight corruption surfaces as a typed error on one side or the
//! other instead of a silently wrong answer.

use crate::chaos::SplitMix64;
use crate::proto::{
    self, EncodeError, ErrorCode, ProtoError, Response, ResponseBody, WireCertificate,
    FLAG_CERTIFICATES, FLAG_CHECKSUM, MAX_FRAME_BYTES, MSG_RETRY_WITHOUT_CERTIFICATES,
};
use crate::text;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Errors raised on the client side of the wire.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (includes the server closing mid-response).
    Io(std::io::Error),
    /// The server's bytes did not parse as a response frame.
    Proto(ProtoError),
    /// A request could not be encoded (argument exceeds a wire field).
    Encode(EncodeError),
    /// The server answered with a typed error frame.
    Remote {
        /// Echoed request ID (0 when the server could not parse one).
        request_id: u64,
        /// The typed error code.
        code: ErrorCode,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A text-mode query line did not parse.
    Text(text::TextError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection failed: {e}"),
            ClientError::Proto(e) => write!(f, "malformed response: {e}"),
            ClientError::Encode(e) => write!(f, "cannot encode request: {e}"),
            ClientError::Remote { code, message, .. } => write!(f, "server: {code}: {message}"),
            ClientError::Text(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Proto(e)
    }
}

impl From<EncodeError> for ClientError {
    fn from(e: EncodeError) -> ClientError {
        ClientError::Encode(e)
    }
}

impl From<text::TextError> for ClientError {
    fn from(e: text::TextError) -> ClientError {
        ClientError::Text(e)
    }
}

impl ClientError {
    /// Whether a transparent retry of the same request is safe and
    /// sensible: transport failures (the connection can be rebuilt and
    /// unanswered requests replayed), corrupted response frames, and
    /// the retryable server codes.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) | ClientError::Proto(_) => true,
            ClientError::Remote { code, .. } => code.is_retryable(),
            ClientError::Encode(_) | ClientError::Text(_) => false,
        }
    }
}

/// Connection and retry tunables of one [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-address TCP connect timeout (`None` = the OS default, which
    /// can be minutes against a black-holed host).
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout.
    pub read_timeout: Option<Duration>,
    /// Socket write timeout.
    pub write_timeout: Option<Duration>,
    /// Transparent retry budget per operation; `0` disables resilience
    /// entirely (failures surface immediately, nothing is buffered for
    /// replay — the zero-overhead default).
    pub retries: u32,
    /// First backoff delay; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Seed of the deterministic backoff jitter (each delay lands in
    /// `[d/2, d]` for the attempt's nominal delay `d`).
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: None,
            write_timeout: None,
            retries: 0,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(500),
            jitter_seed: 0x7E57_5EED,
        }
    }
}

impl ClientConfig {
    /// A self-healing preset: bounded timeouts and a retry budget
    /// suitable for traffic that must survive server swaps, drains, and
    /// overload shedding.
    pub fn resilient() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(2)),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Some(Duration::from_secs(5)),
            retries: 8,
            ..ClientConfig::default()
        }
    }
}

/// Lifetime resilience counters of one [`Client`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Connections re-established after a transport failure.
    pub reconnects: u64,
    /// Requests retried (any cause: transport, corruption, retryable
    /// server codes).
    pub retries: u64,
    /// Unanswered pipelined requests replayed across reconnects.
    pub replayed: u64,
}

/// The full outcome of [`Client::query_certified`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertifiedAnswers {
    /// One `bool` per requested pair, in request order.
    pub answers: Vec<bool>,
    /// Merge certificate per connected pair (aligned with `answers`).
    /// All `None` when `certificates_dropped`.
    pub certificates: Vec<Option<WireCertificate>>,
    /// The certified response exceeded the frame cap, so the client
    /// transparently retried without certificates — the answers are
    /// authoritative but the certificates were dropped.
    pub certificates_dropped: bool,
}

/// A blocking `ftc-net` connection.
pub struct Client {
    stream: TcpStream,
    /// Resolved addresses, kept for reconnects.
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    wbuf: Vec<u8>,
    rbuf: Vec<u8>,
    next_id: u64,
    /// Encoded frames of sent-but-unanswered requests, by ID (BTreeMap
    /// so replay preserves send order). Only populated when
    /// `config.retries > 0`.
    inflight: BTreeMap<u64, Vec<u8>>,
    jitter: SplitMix64,
    stats: ClientStats,
}

impl Client {
    /// Connects with the default [`ClientConfig`] (TCP, `TCP_NODELAY`,
    /// bounded connect timeout, no transparent retries).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit tunables. The address is resolved once;
    /// every resolved address is attempted with
    /// [`ClientConfig::connect_timeout`] before giving up, and the list
    /// is kept for transparent reconnects.
    ///
    /// # Errors
    ///
    /// The last address's connect failure (or an invalid-input error
    /// when nothing resolves).
    pub fn connect_with(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = open_stream(&addrs, &config)?;
        let jitter = SplitMix64::new(config.jitter_seed);
        Ok(Client {
            stream,
            addrs,
            config,
            wbuf: Vec::new(),
            rbuf: Vec::new(),
            next_id: 1,
            inflight: BTreeMap::new(),
            jitter,
            stats: ClientStats::default(),
        })
    }

    /// The remote address.
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Lifetime resilience counters (all zero when retries are off).
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Sleeps the attempt's backoff: exponential from
    /// [`ClientConfig::backoff_base`], capped at
    /// [`ClientConfig::backoff_max`], with deterministic jitter in
    /// `[d/2, d]`.
    fn backoff(&mut self, attempt: u32) {
        let base = self.config.backoff_base.as_nanos() as u64;
        let max = self.config.backoff_max.as_nanos() as u64;
        let nominal = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(max.max(1));
        let jittered = nominal / 2 + self.jitter.next_u64() % (nominal / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }

    /// Re-resolves nothing, reconnects to the kept address list with
    /// backoff, then replays every unanswered pipelined request with its
    /// original request ID, in send order.
    fn reconnect_and_replay(&mut self) -> Result<(), ClientError> {
        let mut attempt: u32 = 0;
        let stream = loop {
            attempt += 1;
            match open_stream(&self.addrs, &self.config) {
                Ok(s) => break s,
                Err(e) => {
                    if attempt > self.config.retries {
                        return Err(ClientError::Io(e));
                    }
                    self.backoff(attempt);
                }
            }
        };
        self.stream = stream;
        self.stats.reconnects += 1;
        for frame in self.inflight.values() {
            self.stream.write_all(frame)?;
            self.stats.replayed += 1;
        }
        Ok(())
    }

    fn send_flags(
        &mut self,
        graph: &str,
        flags: u16,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.wbuf.clear();
        proto::encode_request(
            &mut self.wbuf,
            id,
            graph,
            flags | FLAG_CHECKSUM,
            faults,
            pairs,
        )?;
        if self.config.retries == 0 {
            self.stream.write_all(&self.wbuf)?;
            return Ok(id);
        }
        // Resilient path: stage the frame for replay *before* writing,
        // so a mid-write connection drop can still be recovered.
        self.inflight.insert(id, self.wbuf.clone());
        if self.stream.write_all(&self.wbuf).is_err() {
            self.stats.retries += 1;
            self.reconnect_and_replay()?;
        }
        Ok(id)
    }

    /// Pipelines one request; returns its request ID without waiting.
    /// With retries enabled, a failed write transparently reconnects and
    /// replays all unanswered requests (including this one).
    ///
    /// # Errors
    ///
    /// [`ClientError::Encode`] / [`ClientError::Io`] on submission
    /// failures.
    pub fn send(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<u64, ClientError> {
        self.send_flags(graph, 0, faults, pairs)
    }

    fn recv_frame(&mut self) -> Result<Response, ClientError> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix);
        if len > MAX_FRAME_BYTES {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{len}-byte response frame exceeds the cap"),
            )));
        }
        self.rbuf.resize(len as usize, 0);
        self.stream.read_exact(&mut self.rbuf)?;
        Ok(proto::decode_response(&self.rbuf)?)
    }

    /// Blocks for the next response frame (any request ID). Typed
    /// server errors come back as [`ResponseBody::Error`], not `Err` —
    /// pipelined callers must see per-request failures without losing
    /// the stream. With retries enabled, transport failures and
    /// corrupted frames trigger a reconnect that **replays every
    /// unanswered request under its original ID** and keeps receiving.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] / [`ClientError::Proto`] when the connection
    /// or the framing itself fails beyond the retry budget.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            match self.recv_frame() {
                Ok(resp) => {
                    self.inflight.remove(&resp.request_id);
                    return Ok(resp);
                }
                Err(e) => {
                    // A corrupted frame (Proto) may have desynced the
                    // stream — the only safe recovery is a fresh
                    // connection, same as for an Io failure.
                    attempt += 1;
                    if self.config.retries == 0
                        || attempt > self.config.retries
                        || !matches!(e, ClientError::Io(_) | ClientError::Proto(_))
                    {
                        return Err(e);
                    }
                    self.stats.retries += 1;
                    self.backoff(attempt);
                    self.reconnect_and_replay()?;
                    if self.inflight.is_empty() {
                        // Nothing left to answer; surface the failure
                        // rather than blocking forever on a quiet pipe.
                        return Err(e);
                    }
                }
            }
        }
    }

    fn call(
        &mut self,
        graph: &str,
        flags: u16,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            let result = self.call_once(graph, flags, faults, pairs);
            match result {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    attempt += 1;
                    if self.config.retries == 0
                        || attempt > self.config.retries
                        || !e.is_retryable()
                    {
                        return Err(e);
                    }
                    self.stats.retries += 1;
                    self.backoff(attempt);
                    // Transport failures need a working socket before
                    // the retry can be sent (recv() may have exhausted
                    // its own budget getting here).
                    if matches!(e, ClientError::Io(_) | ClientError::Proto(_)) {
                        self.reconnect_and_replay()?;
                    }
                }
            }
        }
    }

    fn call_once(
        &mut self,
        graph: &str,
        flags: u16,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Response, ClientError> {
        let id = self.send_flags(graph, flags, faults, pairs)?;
        loop {
            let resp = self.recv()?;
            if resp.request_id != id {
                // Either a stale pipelined response (skip to ours) or a
                // connection-level rejection (request ID 0): the server
                // shed the whole connection before reading our request.
                if resp.request_id == 0 {
                    if let ResponseBody::Error { code, message } = resp.body {
                        if code.is_retryable() {
                            return Err(ClientError::Remote {
                                request_id: 0,
                                code,
                                message,
                            });
                        }
                        // The server rejected a frame it could not even
                        // attribute to a request — e.g. our request was
                        // corrupted in flight. One of our in-flight
                        // requests is now unanswered forever, so recover
                        // like a transport failure: reconnect + replay.
                        return Err(ClientError::Io(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("connection-level {code}: {message}"),
                        )));
                    }
                }
                continue;
            }
            // This request is answered; it must not be replayed by a
            // later reconnect even if the answer is an error frame.
            self.inflight.remove(&id);
            if let ResponseBody::Error { code, message } = resp.body {
                return Err(ClientError::Remote {
                    request_id: id,
                    code,
                    message,
                });
            }
            return Ok(resp);
        }
    }

    /// Answers `pairs` under `faults` on `graph`: one `bool` per pair,
    /// in request order.
    ///
    /// # Errors
    ///
    /// [`ClientError::Remote`] for typed server errors, transport
    /// variants otherwise. With retries enabled, retryable failures
    /// (`Overloaded`, `ShuttingDown`, transport, corruption) are
    /// absorbed up to the budget.
    pub fn query(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Vec<bool>, ClientError> {
        match self.call(graph, 0, faults, pairs)?.body {
            ResponseBody::Answers { answers, .. } => Ok(answers),
            ResponseBody::Error { .. } => unreachable!("call() surfaces error bodies"),
        }
    }

    /// Like [`Client::query`], also returning the merge certificate per
    /// connected pair. When the server rejects the certified response as
    /// over the frame cap, the client automatically retries the same
    /// query **without** certificates and surfaces the downgrade via
    /// [`CertifiedAnswers::certificates_dropped`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Client::query`].
    pub fn query_certified(
        &mut self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<CertifiedAnswers, ClientError> {
        match self.call(graph, FLAG_CERTIFICATES, faults, pairs) {
            Ok(resp) => match resp.body {
                ResponseBody::Answers {
                    answers,
                    certificates,
                } => {
                    let certificates = certificates.unwrap_or_else(|| vec![None; answers.len()]);
                    Ok(CertifiedAnswers {
                        answers,
                        certificates,
                        certificates_dropped: false,
                    })
                }
                ResponseBody::Error { .. } => unreachable!("call() surfaces error bodies"),
            },
            Err(ClientError::Remote { code, message, .. })
                if code == ErrorCode::QueryRejected
                    && message == MSG_RETRY_WITHOUT_CERTIFICATES =>
            {
                let answers = self.query(graph, faults, pairs)?;
                Ok(CertifiedAnswers {
                    certificates: vec![None; answers.len()],
                    answers,
                    certificates_dropped: true,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Text-mode debug tooling: answers one `s t [u:v ...]` query line
    /// (the `ftc-cli serve` grammar, parsed by [`text::parse_query_line`])
    /// over the binary protocol, returning the formatted answer line.
    /// `Ok(None)` for blank/comment lines.
    ///
    /// # Errors
    ///
    /// [`ClientError::Text`] on grammar errors, the [`Client::query`]
    /// conditions otherwise.
    pub fn query_line(&mut self, graph: &str, line: &str) -> Result<Option<String>, ClientError> {
        let Some(q) = text::parse_query_line(line)? else {
            return Ok(None);
        };
        let answers = self.query(graph, &q.faults, &[(q.s, q.t)])?;
        Ok(Some(text::answer_line(q.s, q.t, answers[0])))
    }
}

/// Connects to the first reachable address with the config's timeouts.
fn open_stream(addrs: &[SocketAddr], config: &ClientConfig) -> std::io::Result<TcpStream> {
    let mut last: Option<std::io::Error> = None;
    for addr in addrs {
        let attempt = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(config.read_timeout)?;
                stream.set_write_timeout(config.write_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "address resolved to nothing",
        )
    }))
}

//! Cross-connection request coalescing: group-commit batching of
//! queries that share a fault set.
//!
//! `BENCH_session.json` shows the expensive step of every query is the
//! *session build* (fault dedup, validation, fragment merge); answering
//! extra pairs against a built session is ~100× cheaper. The server
//! therefore groups in-flight requests by `(graph, normalized fault
//! set)` and answers each group from **one** pooled
//! [`QuerySession`](ftc_core::QuerySession), amortizing the build across
//! connections.
//!
//! The batching discipline is group commit, not a timer:
//!
//! * the **first** request for an idle key becomes the batch *leader*
//!   and executes immediately — an uncontended request pays zero added
//!   latency;
//! * while a batch for the key is executing, newcomers pile their pairs
//!   onto the *pending* batch; its leader (the first newcomer) waits for
//!   the executing batch to finish before taking its turn. Under load
//!   the pending batch grows automatically to `arrival rate ×
//!   session-build latency` requests — the classic group-commit window
//!   with no configured delay.
//!
//! A batch-level failure falls back to per-request queries so coalesced
//! neighbors cannot poison each other (e.g. a fault set over the budget
//! fails the *batch* only because another request contributed a
//! non-trivial pair; retried alone, an all-trivial request still
//! succeeds, exactly as if it had never been coalesced).

use ftc_serve::{ConnectivityService, ServeError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// What a request coalesces on: the target graph and its fault set,
/// normalized (per-pair min/max order, sorted, deduplicated) so that
/// permutations of the same faults share a batch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    graph: Arc<str>,
    faults: Arc<[(usize, usize)]>,
}

struct BatchState {
    pairs: Vec<(usize, usize)>,
    /// `None` until the leader publishes; shared so every waiter slices
    /// its own answers out without copying the batch.
    result: Option<Result<Arc<[bool]>, ServeError>>,
}

struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

#[derive(Default)]
struct KeyState {
    /// A leader is currently executing a batch for this key.
    executing: bool,
    /// The open batch newcomers join while the key is busy.
    pending: Option<Arc<Batch>>,
}

/// A snapshot of the coalescer's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Requests submitted.
    pub requests: u64,
    /// Requests that joined an already-open batch (each one is a
    /// session build avoided).
    pub coalesced: u64,
    /// Batches executed (= sessions built by the serving path).
    pub batches: u64,
    /// Pairs answered.
    pub pairs: u64,
}

/// The coalescing queue shared by every connection of one server.
pub struct Coalescer {
    enabled: bool,
    keys: Mutex<HashMap<Key, KeyState>>,
    /// Signaled whenever a key finishes executing (its next leader may
    /// take a turn).
    turn: Condvar,
    requests: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    pairs: AtomicU64,
}

enum Role {
    Leader,
    Follower,
}

impl Coalescer {
    /// A coalescer; `enabled = false` degrades to one session per
    /// request (the comparison arm of `ftc-loadgen`).
    pub fn new(enabled: bool) -> Coalescer {
        Coalescer {
            enabled,
            keys: Mutex::new(HashMap::new()),
            turn: Condvar::new(),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pairs: AtomicU64::new(0),
        }
    }

    /// Whether coalescing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            pairs: self.pairs.load(Ordering::Relaxed),
        }
    }

    fn keys(&self) -> std::sync::MutexGuard<'_, HashMap<Key, KeyState>> {
        // Holders only mutate the map/batch vectors; a panic while
        // appending leaves consistent state, so poisoning is ignored.
        self.keys.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Answers `pairs` under `faults` on `service`, coalescing with
    /// concurrent submissions that share the same graph + fault set.
    /// Answers come back in `pairs` order with solo-request semantics.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`ConnectivityService::query`] would raise for
    /// this request alone.
    pub fn submit(
        &self,
        service: &ConnectivityService,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Vec<bool>, ServeError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        if !self.enabled {
            self.batches.fetch_add(1, Ordering::Relaxed);
            return service.query(faults, pairs).map(|a| a.into_vec());
        }

        let mut norm: Vec<(usize, usize)> =
            faults.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        norm.sort_unstable();
        norm.dedup();
        let key = Key {
            graph: graph.into(),
            faults: norm.into(),
        };

        let (role, batch, start) = {
            let mut keys = self.keys();
            let entry = keys.entry(key.clone()).or_default();
            match &entry.pending {
                Some(open) => {
                    // Joining appends under the keys lock, so a leader
                    // that takes the pending batch (also under the keys
                    // lock) always sees every joined request's pairs.
                    let open = open.clone();
                    let mut state = open.state.lock().unwrap_or_else(|e| e.into_inner());
                    let start = state.pairs.len();
                    state.pairs.extend_from_slice(pairs);
                    drop(state);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    (Role::Follower, open, start)
                }
                None => {
                    let batch = Arc::new(Batch {
                        state: Mutex::new(BatchState {
                            pairs: pairs.to_vec(),
                            result: None,
                        }),
                        done: Condvar::new(),
                    });
                    entry.pending = Some(batch.clone());
                    (Role::Leader, batch, 0)
                }
            }
        };

        let result = match role {
            Role::Follower => {
                let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
                while state.result.is_none() {
                    state = batch.done.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                state.result.clone().expect("published batch result")
            }
            Role::Leader => self.lead(service, &key, &batch),
        };

        match result {
            Ok(all) => Ok(all[start..start + pairs.len()].to_vec()),
            // The batch failed as a whole; retry alone so this request
            // gets exactly its solo outcome (success or *its own* error).
            Err(_) => service.query(&key.faults, pairs).map(|a| a.into_vec()),
        }
    }

    /// Leader duty: wait for the key's turn, close the batch, execute it
    /// once, publish the result, pass the turn on.
    fn lead(
        &self,
        service: &ConnectivityService,
        key: &Key,
        batch: &Arc<Batch>,
    ) -> Result<Arc<[bool]>, ServeError> {
        {
            let mut keys = self.keys();
            while keys.get(key).is_some_and(|e| e.executing) {
                keys = self.turn.wait(keys).unwrap_or_else(|e| e.into_inner());
            }
            let entry = keys.get_mut(key).expect("leader's key entry");
            entry.executing = true;
            entry.pending = None; // later arrivals open the next batch
        }

        // Sole owner of the closed batch's pairs now: joins happened
        // under the keys lock, which we held while clearing `pending`.
        let batch_pairs = {
            let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut state.pairs)
        };
        let result: Result<Arc<[bool]>, ServeError> = service
            .query(&key.faults, &batch_pairs)
            .map(|a| a.into_vec().into());
        self.batches.fetch_add(1, Ordering::Relaxed);

        {
            let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            state.result = Some(result.clone());
            batch.done.notify_all();
        }
        {
            let mut keys = self.keys();
            let idle = {
                let entry = keys.get_mut(key).expect("leader's key entry");
                entry.executing = false;
                entry.pending.is_none()
            };
            if idle {
                keys.remove(key); // don't let dead keys grow the map
            }
            self.turn.notify_all();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::{FtcScheme, Params};
    use ftc_graph::Graph;
    use std::sync::Barrier;

    fn service() -> ConnectivityService {
        let g = Graph::torus(3, 4);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        ConnectivityService::from_labels(scheme.into_labels())
    }

    #[test]
    fn solo_submissions_match_direct_queries() {
        let svc = service();
        for enabled in [false, true] {
            let co = Coalescer::new(enabled);
            let faults = [(0usize, 1usize), (4, 0)];
            let pairs = [(0usize, 7usize), (3, 3), (1, 11)];
            let got = co.submit(&svc, "g", &faults, &pairs).unwrap();
            let want = svc.query(&faults, &pairs).unwrap().into_vec();
            assert_eq!(got, want);
            let stats = co.stats();
            assert_eq!(stats.requests, 1);
            assert_eq!(stats.batches, 1);
            assert_eq!(stats.coalesced, 0);
            assert_eq!(stats.pairs, pairs.len() as u64);
        }
    }

    #[test]
    fn fault_order_and_duplicates_share_a_key() {
        let svc = service();
        let co = Coalescer::new(true);
        // Reversed endpoints and duplicated faults answer like the
        // normalized set.
        let got = co
            .submit(&svc, "g", &[(1, 0), (0, 1), (0, 4)], &[(0, 7)])
            .unwrap();
        let want = svc.query(&[(0, 1), (0, 4)], &[(0, 7)]).unwrap().into_vec();
        assert_eq!(got, want);
    }

    #[test]
    fn errors_match_solo_semantics() {
        let svc = service();
        let co = Coalescer::new(true);
        assert_eq!(
            co.submit(&svc, "g", &[(0, 99)], &[(0, 1)]).unwrap_err(),
            ServeError::UnknownEdge { u: 0, v: 99 }
        );
        // Over-budget faults with an all-trivial request still succeed
        // (the solo-semantics contract the fallback preserves).
        let got = co
            .submit(&svc, "g", &[(0, 1), (1, 2), (2, 3)], &[(5, 5)])
            .unwrap();
        assert_eq!(got, vec![true]);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_answer_correctly() {
        let svc = service();
        let co = Coalescer::new(true);
        let threads = 8;
        let rounds = 20;
        let barrier = Barrier::new(threads);
        let faults = [(0usize, 1usize), (0, 4)];
        let want: Vec<Vec<bool>> = (0..threads)
            .map(|w| {
                let pairs: Vec<(usize, usize)> = (0..4).map(|i| (w, (w + i + 1) % 12)).collect();
                svc.query(&faults, &pairs).unwrap().into_vec()
            })
            .collect();
        std::thread::scope(|s| {
            for w in 0..threads {
                let (co, svc, barrier, want) = (&co, &svc, &barrier, &want);
                s.spawn(move || {
                    let pairs: Vec<(usize, usize)> =
                        (0..4).map(|i| (w, (w + i + 1) % 12)).collect();
                    for _ in 0..rounds {
                        barrier.wait();
                        let got = co.submit(svc, "g", &faults, &pairs).unwrap();
                        assert_eq!(&got, &want[w]);
                    }
                });
            }
        });
        let stats = co.stats();
        assert_eq!(stats.requests, (threads * rounds) as u64);
        // Group commit must have merged at least some simultaneous
        // submissions — with 8 threads released by a barrier every
        // round, strictly fewer batches than requests is guaranteed
        // unless every single submission serialized perfectly (which
        // the barrier makes practically impossible over 20 rounds; if
        // this ever flakes, the coalescer is broken, not the test).
        assert!(
            stats.batches + stats.coalesced == stats.requests,
            "every request is either a leader or coalesced"
        );
        assert!(stats.coalesced > 0, "no coalescing happened: {stats:?}");
    }
}

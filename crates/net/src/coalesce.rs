//! Cross-connection request coalescing: group-commit batching of
//! queries that share a fault set.
//!
//! `BENCH_session.json` shows the expensive step of every query is the
//! *session build* (fault dedup, validation, fragment merge); answering
//! extra pairs against a built session is ~100× cheaper. The server
//! therefore groups in-flight requests by `(graph, normalized fault
//! set)` and answers each group from **one** pooled
//! [`QuerySession`](ftc_core::QuerySession), amortizing the build across
//! connections.
//!
//! The batching discipline is group commit, not a timer:
//!
//! * the **first** request for an idle key becomes the batch *leader*
//!   and executes immediately — an uncontended request pays zero added
//!   latency;
//! * while a batch for the key is executing, newcomers pile their pairs
//!   onto the *pending* batch; its leader (the first newcomer) waits for
//!   the executing batch to finish before taking its turn. Under load
//!   the pending batch grows automatically to `arrival rate ×
//!   session-build latency` requests — the classic group-commit window
//!   with no configured delay.
//!
//! A batch-level failure falls back to per-request queries so coalesced
//! neighbors cannot poison each other (e.g. a fault set over the budget
//! fails the *batch* only because another request contributed a
//! non-trivial pair; retried alone, an all-trivial request still
//! succeeds, exactly as if it had never been coalesced).
//!
//! # Overload and failure discipline
//!
//! The coalescer **sheds instead of queueing**: when the number of open
//! batches reaches `max_inflight`, or a submission's deadline expires
//! before its batch can execute, the request fails fast with
//! [`SubmitError::Overloaded`] — the wire maps it to
//! `ErrorCode::Overloaded`, which clients know is retryable. A leader
//! that *panics* mid-execution publishes a poisoned outcome before the
//! panic resumes, so waiters never hang on a dead batch; they fall back
//! to solo queries exactly as for a batch-level error.

use ftc_serve::{ConnectivityService, ServeError};
use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a request coalesces on: the target graph and its fault set,
/// normalized (per-pair min/max order, sorted, deduplicated) so that
/// permutations of the same faults share a batch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    graph: Arc<str>,
    faults: Arc<[(usize, usize)]>,
}

/// How a batch ended, as published to its waiters.
#[derive(Clone)]
enum Outcome {
    /// Answers for every pair in the batch, in join order.
    Done(Arc<[bool]>),
    /// The batch query failed as a whole; waiters retry solo.
    Failed,
    /// The batch was shed before executing (its leader's deadline
    /// expired while queued behind another batch).
    Shed,
    /// The leader panicked mid-execution. Waiters must not inherit the
    /// panic; they retry solo like a batch-level failure.
    Poisoned,
}

struct BatchState {
    pairs: Vec<(usize, usize)>,
    /// `None` until the leader publishes; shared so every waiter slices
    /// its own answers out without copying the batch.
    result: Option<Outcome>,
}

struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

#[derive(Default)]
struct KeyState {
    /// A leader is currently executing a batch for this key.
    executing: bool,
    /// The open batch newcomers join while the key is busy.
    pending: Option<Arc<Batch>>,
}

/// A snapshot of the coalescer's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Requests submitted.
    pub requests: u64,
    /// Requests that joined an already-open batch (each one is a
    /// session build avoided).
    pub coalesced: u64,
    /// Batches executed (= sessions built by the serving path).
    pub batches: u64,
    /// Pairs answered.
    pub pairs: u64,
    /// Requests shed with [`SubmitError::Overloaded`] (inflight cap hit
    /// or deadline expired before execution).
    pub shed: u64,
}

/// Why a submission did not produce answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The request was shed without executing — the coalescer is at its
    /// inflight cap or the request's deadline expired while queued.
    /// Safe (and expected) to retry after backoff.
    Overloaded,
    /// The request's own error, with exact solo-query semantics.
    Serve(ServeError),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Overloaded => f.write_str("request shed: coalescer overloaded"),
            SubmitError::Serve(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ServeError> for SubmitError {
    fn from(e: ServeError) -> SubmitError {
        SubmitError::Serve(e)
    }
}

/// The coalescing queue shared by every connection of one server.
pub struct Coalescer {
    enabled: bool,
    /// Open-batch ceiling; `0` = unbounded.
    max_inflight: usize,
    keys: Mutex<HashMap<Key, KeyState>>,
    /// Signaled whenever a key finishes executing (its next leader may
    /// take a turn).
    turn: Condvar,
    open: AtomicU64,
    requests: AtomicU64,
    coalesced: AtomicU64,
    batches: AtomicU64,
    pairs: AtomicU64,
    shed: AtomicU64,
}

enum Role {
    Leader,
    Follower,
}

/// Releases an open-batch slot on drop, so the count stays correct even
/// when the batch query panics and unwinds through `submit_with`.
struct SlotGuard<'a>(&'a Coalescer);

impl Drop for SlotGuard<'_> {
    fn drop(&mut self) {
        self.0.open.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Coalescer {
    /// A coalescer; `enabled = false` degrades to one session per
    /// request (the comparison arm of `ftc-loadgen`). Unbounded.
    pub fn new(enabled: bool) -> Coalescer {
        Coalescer::with_max_inflight(enabled, 0)
    }

    /// A coalescer that sheds new batches beyond `max_inflight` open
    /// ones (`0` = unbounded). Joining an already-open batch is always
    /// allowed — piling pairs onto a batch adds no session builds.
    pub fn with_max_inflight(enabled: bool, max_inflight: usize) -> Coalescer {
        Coalescer {
            enabled,
            max_inflight,
            keys: Mutex::new(HashMap::new()),
            turn: Condvar::new(),
            open: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            pairs: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Whether coalescing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Lifetime counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            requests: self.requests.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            pairs: self.pairs.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    fn keys(&self) -> std::sync::MutexGuard<'_, HashMap<Key, KeyState>> {
        // Holders only mutate the map/batch vectors; a panic while
        // appending leaves consistent state, so poisoning is ignored.
        self.keys.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn try_open_slot(&self) -> Option<SlotGuard<'_>> {
        if self.max_inflight == 0 {
            self.open.fetch_add(1, Ordering::Relaxed);
            return Some(SlotGuard(self));
        }
        let mut cur = self.open.load(Ordering::Relaxed);
        loop {
            if cur >= self.max_inflight as u64 {
                return None;
            }
            match self.open.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(SlotGuard(self)),
                Err(now) => cur = now,
            }
        }
    }

    fn shed<T>(&self) -> Result<T, SubmitError> {
        self.shed.fetch_add(1, Ordering::Relaxed);
        Err(SubmitError::Overloaded)
    }

    /// Answers `pairs` under `faults` on `service`, coalescing with
    /// concurrent submissions that share the same graph + fault set.
    /// Answers come back in `pairs` order with solo-request semantics.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Serve`] carrying exactly the error
    /// [`ConnectivityService::query`] would raise for this request
    /// alone; [`SubmitError::Overloaded`] when the request was shed.
    pub fn submit(
        &self,
        service: &ConnectivityService,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Vec<bool>, SubmitError> {
        self.submit_deadline(service, graph, faults, pairs, None)
    }

    /// [`submit`](Coalescer::submit) with a request deadline: a request
    /// still queued (joined or leading a not-yet-executed batch) when
    /// `deadline` passes is shed with [`SubmitError::Overloaded`].
    pub fn submit_deadline(
        &self,
        service: &ConnectivityService,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
        deadline: Option<Instant>,
    ) -> Result<Vec<bool>, SubmitError> {
        self.submit_with(graph, faults, pairs, deadline, |faults, pairs| {
            service.query(faults, pairs).map(|a| a.into_vec())
        })
    }

    /// The full coalescing engine, generic over the batch query so tests
    /// can inject failures (including panics) at exactly the
    /// batch-execution point. `query` is called once per executed batch
    /// with the normalized fault set and the batch's combined pairs, and
    /// again (per request, with that request's own pairs) for the solo
    /// fallback after a batch-level failure.
    pub fn submit_with<F>(
        &self,
        graph: &str,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
        deadline: Option<Instant>,
        query: F,
    ) -> Result<Vec<bool>, SubmitError>
    where
        F: Fn(&[(usize, usize)], &[(usize, usize)]) -> Result<Vec<bool>, ServeError>,
    {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.pairs.fetch_add(pairs.len() as u64, Ordering::Relaxed);
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return self.shed();
        }
        if !self.enabled {
            let Some(_slot) = self.try_open_slot() else {
                return self.shed();
            };
            self.batches.fetch_add(1, Ordering::Relaxed);
            return Ok(query(faults, pairs)?);
        }

        let mut norm: Vec<(usize, usize)> =
            faults.iter().map(|&(u, v)| (u.min(v), u.max(v))).collect();
        norm.sort_unstable();
        norm.dedup();
        let key = Key {
            graph: graph.into(),
            faults: norm.into(),
        };

        let (role, batch, start, _slot) = {
            let mut keys = self.keys();
            let entry = keys.entry(key.clone()).or_default();
            match &entry.pending {
                Some(open) => {
                    // Joining appends under the keys lock, so a leader
                    // that takes the pending batch (also under the keys
                    // lock) always sees every joined request's pairs.
                    let open = open.clone();
                    let mut state = open.state.lock().unwrap_or_else(|e| e.into_inner());
                    let start = state.pairs.len();
                    state.pairs.extend_from_slice(pairs);
                    drop(state);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    (Role::Follower, open, start, None)
                }
                None => {
                    // A new batch needs an open slot; at the cap we shed
                    // rather than queue.
                    let Some(slot) = self.try_open_slot() else {
                        if !entry.executing && entry.pending.is_none() {
                            keys.remove(&key);
                        }
                        drop(keys);
                        return self.shed();
                    };
                    let batch = Arc::new(Batch {
                        state: Mutex::new(BatchState {
                            pairs: pairs.to_vec(),
                            result: None,
                        }),
                        done: Condvar::new(),
                    });
                    entry.pending = Some(batch.clone());
                    (Role::Leader, batch, 0, Some(slot))
                }
            }
        };

        let outcome = match role {
            Role::Follower => {
                let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(out) = state.result.clone() {
                        break out;
                    }
                    match deadline {
                        None => {
                            state = batch.done.wait(state).unwrap_or_else(|e| e.into_inner());
                        }
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                // Abandon the wait; the batch may still
                                // execute with our pairs, but nobody is
                                // listening for these answers.
                                drop(state);
                                return self.shed();
                            }
                            state = batch
                                .done
                                .wait_timeout(state, d - now)
                                .unwrap_or_else(|e| e.into_inner())
                                .0;
                        }
                    }
                }
            }
            Role::Leader => self.lead(&key, &batch, deadline, &query),
        };

        match outcome {
            Outcome::Done(all) => Ok(all[start..start + pairs.len()].to_vec()),
            Outcome::Shed => self.shed(),
            // The batch failed (or its leader panicked) as a whole;
            // retry alone so this request gets exactly its solo outcome
            // (success or *its own* error).
            Outcome::Failed | Outcome::Poisoned => Ok(query(&key.faults, pairs)?),
        }
    }

    /// Leader duty: wait for the key's turn, close the batch, execute it
    /// once, publish the outcome, pass the turn on. Publication happens
    /// on **every** exit path — normal, error, deadline shed, and panic
    /// (the unwind is caught, the batch poisoned, then resumed) — so a
    /// waiter can never hang on a batch whose leader is gone.
    fn lead<F>(
        &self,
        key: &Key,
        batch: &Arc<Batch>,
        deadline: Option<Instant>,
        query: &F,
    ) -> Outcome
    where
        F: Fn(&[(usize, usize)], &[(usize, usize)]) -> Result<Vec<bool>, ServeError>,
    {
        {
            let mut keys = self.keys();
            while keys.get(key).is_some_and(|e| e.executing) {
                match deadline {
                    None => {
                        keys = self.turn.wait(keys).unwrap_or_else(|e| e.into_inner());
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            // Shed the whole batch: it never executed,
                            // so every member may safely retry.
                            if let Some(entry) = keys.get_mut(key) {
                                if entry
                                    .pending
                                    .as_ref()
                                    .is_some_and(|p| Arc::ptr_eq(p, batch))
                                {
                                    entry.pending = None;
                                }
                                if !entry.executing && entry.pending.is_none() {
                                    keys.remove(key);
                                }
                            }
                            drop(keys);
                            self.publish(batch, Outcome::Shed);
                            return Outcome::Shed;
                        }
                        keys = self
                            .turn
                            .wait_timeout(keys, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            let entry = keys.get_mut(key).expect("leader's key entry");
            entry.executing = true;
            entry.pending = None; // later arrivals open the next batch
        }

        // Sole owner of the closed batch's pairs now: joins happened
        // under the keys lock, which we held while clearing `pending`.
        let batch_pairs = {
            let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut state.pairs)
        };
        self.batches.fetch_add(1, Ordering::Relaxed);
        let result = panic::catch_unwind(AssertUnwindSafe(|| query(&key.faults, &batch_pairs)));

        let outcome = match result {
            Ok(Ok(answers)) => Outcome::Done(answers.into()),
            Ok(Err(_)) => Outcome::Failed,
            Err(payload) => {
                self.publish(batch, Outcome::Poisoned);
                self.finish_key(key);
                panic::resume_unwind(payload);
            }
        };
        self.publish(batch, outcome.clone());
        self.finish_key(key);
        outcome
    }

    fn publish(&self, batch: &Batch, outcome: Outcome) {
        let mut state = batch.state.lock().unwrap_or_else(|e| e.into_inner());
        state.result = Some(outcome);
        batch.done.notify_all();
    }

    fn finish_key(&self, key: &Key) {
        let mut keys = self.keys();
        if let Some(entry) = keys.get_mut(key) {
            entry.executing = false;
            if entry.pending.is_none() {
                keys.remove(key); // don't let dead keys grow the map
            }
        }
        self.turn.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::{FtcScheme, Params};
    use ftc_graph::Graph;
    use std::sync::atomic::AtomicBool;
    use std::sync::Barrier;
    use std::time::Duration;

    fn service() -> ConnectivityService {
        let g = Graph::torus(3, 4);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        ConnectivityService::from_labels(scheme.into_labels())
    }

    #[test]
    fn solo_submissions_match_direct_queries() {
        let svc = service();
        for enabled in [false, true] {
            let co = Coalescer::new(enabled);
            let faults = [(0usize, 1usize), (4, 0)];
            let pairs = [(0usize, 7usize), (3, 3), (1, 11)];
            let got = co.submit(&svc, "g", &faults, &pairs).unwrap();
            let want = svc.query(&faults, &pairs).unwrap().into_vec();
            assert_eq!(got, want);
            let stats = co.stats();
            assert_eq!(stats.requests, 1);
            assert_eq!(stats.batches, 1);
            assert_eq!(stats.coalesced, 0);
            assert_eq!(stats.pairs, pairs.len() as u64);
            assert_eq!(stats.shed, 0);
        }
    }

    #[test]
    fn fault_order_and_duplicates_share_a_key() {
        let svc = service();
        let co = Coalescer::new(true);
        // Reversed endpoints and duplicated faults answer like the
        // normalized set.
        let got = co
            .submit(&svc, "g", &[(1, 0), (0, 1), (0, 4)], &[(0, 7)])
            .unwrap();
        let want = svc.query(&[(0, 1), (0, 4)], &[(0, 7)]).unwrap().into_vec();
        assert_eq!(got, want);
    }

    #[test]
    fn errors_match_solo_semantics() {
        let svc = service();
        let co = Coalescer::new(true);
        assert_eq!(
            co.submit(&svc, "g", &[(0, 99)], &[(0, 1)]).unwrap_err(),
            SubmitError::Serve(ServeError::UnknownEdge { u: 0, v: 99 })
        );
        // Over-budget faults with an all-trivial request still succeed
        // (the solo-semantics contract the fallback preserves).
        let got = co
            .submit(&svc, "g", &[(0, 1), (1, 2), (2, 3)], &[(5, 5)])
            .unwrap();
        assert_eq!(got, vec![true]);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_answer_correctly() {
        let svc = service();
        let co = Coalescer::new(true);
        let threads = 8;
        let rounds = 20;
        let barrier = Barrier::new(threads);
        let faults = [(0usize, 1usize), (0, 4)];
        let want: Vec<Vec<bool>> = (0..threads)
            .map(|w| {
                let pairs: Vec<(usize, usize)> = (0..4).map(|i| (w, (w + i + 1) % 12)).collect();
                svc.query(&faults, &pairs).unwrap().into_vec()
            })
            .collect();
        std::thread::scope(|s| {
            for w in 0..threads {
                let (co, svc, barrier, want) = (&co, &svc, &barrier, &want);
                s.spawn(move || {
                    let pairs: Vec<(usize, usize)> =
                        (0..4).map(|i| (w, (w + i + 1) % 12)).collect();
                    for _ in 0..rounds {
                        barrier.wait();
                        let got = co.submit(svc, "g", &faults, &pairs).unwrap();
                        assert_eq!(&got, &want[w]);
                    }
                });
            }
        });
        let stats = co.stats();
        assert_eq!(stats.requests, (threads * rounds) as u64);
        // Group commit must have merged at least some simultaneous
        // submissions — with 8 threads released by a barrier every
        // round, strictly fewer batches than requests is guaranteed
        // unless every single submission serialized perfectly (which
        // the barrier makes practically impossible over 20 rounds; if
        // this ever flakes, the coalescer is broken, not the test).
        assert!(
            stats.batches + stats.coalesced == stats.requests,
            "every request is either a leader or coalesced"
        );
        assert!(stats.coalesced > 0, "no coalescing happened: {stats:?}");
    }

    /// Satellite: a leader that panics while executing must release the
    /// key so queued leaders take their turn instead of hanging forever.
    #[test]
    fn executing_leader_panic_releases_queued_batches() {
        let svc = service();
        let co = Coalescer::new(true);
        let panic_armed = AtomicBool::new(true);
        let faults = [(0usize, 1usize)];
        let want = svc.query(&faults, &[(0, 7)]).unwrap().into_vec();

        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                // This submission leads the first batch; its query waits
                // until a second batch is queued behind it, then dies.
                co.submit_with(
                    "g",
                    &faults,
                    &[(0, 7)],
                    None,
                    |_, _| -> Result<Vec<bool>, ServeError> {
                        while co.stats().coalesced < 1 {
                            std::thread::yield_now();
                        }
                        panic!("injected leader failure");
                    },
                )
            });
            // Wait until the leader is executing (its query is live and
            // spinning), then queue a second batch behind it.
            while co.stats().batches < 1 {
                std::thread::yield_now();
            }
            let queued: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        co.submit_with("g", &faults, &[(0, 7)], None, |f, p| {
                            svc.query(f, p).map(|a| a.into_vec())
                        })
                    })
                })
                .collect();
            let _ = panic_armed; // leader panics exactly once by design
            for t in queued {
                // Neither queued submission may hang or inherit the
                // panic; both answer correctly once the key is released.
                assert_eq!(t.join().expect("no inherited panic").unwrap(), want);
            }
            assert!(leader.join().is_err(), "leader must re-raise its panic");
        });
    }

    /// Satellite: followers of the panicked batch itself fall back to
    /// solo queries via the poisoned outcome instead of hanging.
    #[test]
    fn poisoned_batch_waiters_fall_back_to_solo_queries() {
        let svc = service();
        let co = Coalescer::new(true);
        let faults = [(0usize, 1usize)];
        let want = svc.query(&faults, &[(3, 9)]).unwrap().into_vec();
        // Arms exactly one panic: whichever of the two queued
        // submissions ends up leading their shared batch dies; the
        // other observes Poisoned and recovers solo.
        let panic_once = AtomicBool::new(false);

        std::thread::scope(|s| {
            let gate_open = s.spawn(|| {
                co.submit_with(
                    "g",
                    &faults,
                    &[(0, 7)],
                    None,
                    |f, p| -> Result<Vec<bool>, ServeError> {
                        // Hold the key until both newcomers are queued on
                        // the pending batch (leader + one coalesced).
                        while co.stats().coalesced < 1 {
                            std::thread::yield_now();
                        }
                        panic_once.store(true, Ordering::SeqCst);
                        svc.query(f, p).map(|a| a.into_vec())
                    },
                )
            });
            while co.stats().batches < 1 {
                std::thread::yield_now();
            }
            let contenders: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        co.submit_with("g", &faults, &[(3, 9)], None, |f, p| {
                            if panic_once.swap(false, Ordering::SeqCst) {
                                panic!("injected batch-leader failure");
                            }
                            svc.query(f, p).map(|a| a.into_vec())
                        })
                    })
                })
                .collect();
            assert!(gate_open.join().expect("gate leader ok").is_ok());
            let results: Vec<_> = contenders.into_iter().map(|t| t.join()).collect();
            let panicked = results.iter().filter(|r| r.is_err()).count();
            assert_eq!(panicked, 1, "exactly one contender leads and panics");
            for r in results.into_iter().flatten() {
                assert_eq!(r.unwrap(), want, "survivor recovers via solo retry");
            }
        });
    }

    #[test]
    fn inflight_cap_sheds_new_batches() {
        let svc = service();
        let co = Coalescer::with_max_inflight(true, 1);
        let release = AtomicBool::new(false);
        std::thread::scope(|s| {
            let slow = s.spawn(|| {
                co.submit_with(
                    "g",
                    &[(0usize, 1usize)],
                    &[(0, 7)],
                    None,
                    |f, p| -> Result<Vec<bool>, ServeError> {
                        while !release.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        svc.query(f, p).map(|a| a.into_vec())
                    },
                )
            });
            while co.stats().batches < 1 {
                std::thread::yield_now();
            }
            // A different key needs a new batch: over the cap, shed.
            assert_eq!(
                co.submit(&svc, "g", &[(0, 4)], &[(1, 2)]).unwrap_err(),
                SubmitError::Overloaded
            );
            assert_eq!(co.stats().shed, 1);
            release.store(true, Ordering::SeqCst);
            assert!(slow.join().unwrap().is_ok());
        });
        // Capacity freed: the same submission now succeeds.
        assert!(co.submit(&svc, "g", &[(0, 4)], &[(1, 2)]).is_ok());
    }

    #[test]
    fn deadlines_shed_queued_submissions() {
        let svc = service();
        let co = Coalescer::new(true);
        // Already-expired deadline: shed before any work.
        let past = Instant::now() - Duration::from_millis(1);
        assert_eq!(
            co.submit_deadline(&svc, "g", &[(0, 1)], &[(0, 7)], Some(past))
                .unwrap_err(),
            SubmitError::Overloaded
        );

        // A queued leader whose deadline passes while another batch
        // executes sheds its whole batch instead of waiting forever.
        let release = AtomicBool::new(false);
        std::thread::scope(|s| {
            let slow = s.spawn(|| {
                co.submit_with(
                    "g",
                    &[(0usize, 1usize)],
                    &[(0, 7)],
                    None,
                    |f, p| -> Result<Vec<bool>, ServeError> {
                        while !release.load(Ordering::SeqCst) {
                            std::thread::yield_now();
                        }
                        svc.query(f, p).map(|a| a.into_vec())
                    },
                )
            });
            while co.stats().batches < 1 {
                std::thread::yield_now();
            }
            let deadline = Instant::now() + Duration::from_millis(40);
            assert_eq!(
                co.submit_deadline(&svc, "g", &[(0, 1)], &[(3, 9)], Some(deadline))
                    .unwrap_err(),
                SubmitError::Overloaded
            );
            release.store(true, Ordering::SeqCst);
            assert!(slow.join().unwrap().is_ok());
        });
        assert_eq!(co.stats().shed, 2);
    }
}

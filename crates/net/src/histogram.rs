//! A fixed-footprint latency histogram for the loadgen.
//!
//! Log-linear buckets: samples are split by their power-of-two
//! magnitude, and each magnitude into [`SUB_BUCKETS`] linear
//! sub-buckets — the classic HdrHistogram shape, reduced to the piece
//! the loadgen needs. Relative quantile error is bounded by
//! `2 / SUB_BUCKETS` (~6%; within each magnitude the top half of the
//! sub-buckets carry the values), the footprint is a flat `u64` array,
//! and
//! recording is two shifts and an increment, so worker threads can keep
//! per-thread histograms and [`merge`](LatencyHistogram::merge) them at
//! the end without synchronizing on the hot path.

/// Linear sub-buckets per power-of-two magnitude (quantile resolution).
pub const SUB_BUCKETS: usize = 32;

/// Power-of-two magnitudes tracked; values at or above
/// `2^(MAGNITUDES-1) * SUB_BUCKETS` clamp into the last bucket. With
/// nanosecond samples that is ~2.3 hours — far beyond any latency the
/// loadgen can observe.
pub const MAGNITUDES: usize = 38;

const BUCKETS: usize = MAGNITUDES * SUB_BUCKETS;

/// Log-linear histogram of `u64` samples (the loadgen records
/// nanoseconds).
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Maps a sample to its bucket index.
fn bucket_of(value: u64) -> usize {
    // Values below SUB_BUCKETS land in magnitude 0 with exact (linear)
    // resolution; above that, the top SUB_BUCKETS bits index the
    // sub-bucket within the sample's power-of-two magnitude.
    let magnitude = (u64::BITS - value.leading_zeros())
        .saturating_sub(SUB_BUCKETS.trailing_zeros())
        .min(MAGNITUDES as u32 - 1);
    let sub = (value >> magnitude) as usize & (SUB_BUCKETS - 1);
    magnitude as usize * SUB_BUCKETS + sub
}

/// The lowest sample value that maps to `bucket` (the reported quantile
/// value; an underestimate by at most one sub-bucket width).
fn bucket_floor(bucket: usize) -> u64 {
    let magnitude = (bucket / SUB_BUCKETS) as u32;
    let sub = (bucket % SUB_BUCKETS) as u64;
    let base = if magnitude == 0 {
        0
    } else {
        (SUB_BUCKETS as u64) << (magnitude - 1)
    };
    base.max(sub << magnitude)
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]` — the smallest bucket floor
    /// such that at least `ceil(q * count)` samples are at or below the
    /// bucket. 0 when empty; `q = 1` reports the exact max.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(bucket);
            }
        }
        self.max
    }

    /// Folds `other` into `self` (per-thread histogram aggregation).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        // Magnitude 0 has linear resolution: every value is its own
        // bucket, so every quantile is exact.
        assert_eq!(h.quantile(0.5), (SUB_BUCKETS as u64).div_ceil(2) - 1);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v * 17); // spread across several magnitudes
        }
        for &q in &[0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact = ((q * 100_000.0_f64).ceil() as u64) * 17;
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 2.0 / SUB_BUCKETS as f64,
                "q={q}: got {got}, exact {exact}, err {err}"
            );
        }
    }

    #[test]
    fn max_is_exact_and_huge_values_clamp() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 { &mut a } else { &mut b }.record(v * v);
            whole.record(v * v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for &q in &[0.25, 0.5, 0.75, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        let mean_gap = (a.mean() - whole.mean()).abs();
        assert!(mean_gap < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert!(h.mean().abs() < f64::EPSILON);
    }

    #[test]
    fn bucket_floor_is_monotone_and_bounds_bucket_of() {
        let mut prev = 0;
        for b in 0..BUCKETS {
            let floor = bucket_floor(b);
            assert!(floor >= prev, "bucket {b} floor went backwards");
            prev = floor;
        }
        for v in [0u64, 1, 31, 32, 33, 1000, 123_456, u64::MAX / 2] {
            let b = bucket_of(v);
            assert!(bucket_floor(b) <= v, "floor exceeds sample for {v}");
        }
    }
}

//! `ftc-net` — the TCP serving subsystem for fault-tolerant
//! connectivity labels.
//!
//! Four layers, bottom-up:
//!
//! - [`proto`] — the length-prefixed binary wire protocol. Requests
//!   name a graph, a fault-edge list, and a pair list; responses carry
//!   per-pair answers, optional merge certificates, or a typed error
//!   code. Parsing is zero-copy over the raw frame bytes (the request
//!   view borrows the payload, pairs iterate lazily), in the spirit of
//!   `ftc-core`'s `LabelStoreView`.
//! - [`coalesce`] — cross-connection request coalescing. Building a
//!   query session costs hundreds of microseconds while each per-pair
//!   query costs one or two, so concurrent requests that share a fault
//!   set are grouped and answered from one pooled session: the first
//!   request for an idle fault set executes immediately, and everyone
//!   who arrives while it runs is batched behind it (group commit — no
//!   timer, no added latency when idle, batches grow with load).
//! - [`server`] — a dependency-free blocking server over `std::net`:
//!   nonblocking accept loop, one handler thread per connection, graceful
//!   SIGINT/SIGTERM shutdown that drains in-flight frames and coalesced
//!   batches. Malformed payloads are answered with typed error frames
//!   without desyncing the stream; only framing violations close a
//!   connection.
//! - [`client`] — a blocking client with pipelined request IDs, plus
//!   the [`text`] query-line grammar shared with `ftc-cli serve` and
//!   the [`histogram`] the loadgen uses for latency quantiles.
//!
//! The `ftc-server` and `ftc-loadgen` binaries live in this crate; see
//! the workspace README for a quickstart.

pub mod chaos;
pub mod client;
pub mod coalesce;
pub mod histogram;
pub mod proto;
pub mod server;
pub mod text;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosStats};
pub use client::{CertifiedAnswers, Client, ClientConfig, ClientError, ClientStats};
pub use coalesce::{CoalesceStats, Coalescer, SubmitError};
pub use histogram::LatencyHistogram;
pub use proto::{ErrorCode, ProtoError, RequestView, Response, ResponseBody};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};

//! The `ftc-net` wire protocol: length-prefixed binary frames.
//!
//! Every message on the wire is one **frame**: a little-endian `u32`
//! payload length (at most [`MAX_FRAME_BYTES`]) followed by exactly that
//! many payload bytes. Because frames are length-delimited, a malformed
//! *payload* never desynchronizes the stream — the server answers it
//! with a typed error frame and keeps the connection; only a violated
//! length prefix (oversized or truncated by EOF) closes the connection.
//!
//! Request payload (all integers little-endian):
//!
//! ```text
//! offset  size          field
//! 0       4             magic  b"FTCQ"
//! 4       2             protocol version (= 1)
//! 6       2             flags  (bit 0: return certificates)
//! 8       8             request ID (echoed verbatim in the response)
//! 16      2             graph-ID length g
//! 18      g             graph ID (UTF-8)
//! 18+g    4             fault count F
//! ..      8·F           faults: F × (u32 u, u32 v) endpoint pairs
//! ..      4             pair count P
//! ..      8·P           pairs:  P × (u32 s, u32 t)
//! ..      8             checksum64 of all prior payload bytes
//!                       (only when flag bit 1 is set)
//! ```
//!
//! Response payload:
//!
//! ```text
//! 0       4             magic  b"FTCR"
//! 4       2             protocol version (= 1)
//! 6       1             status (0 = OK, else an ErrorCode)
//! 7       1             flags  (bit 0: certificates present)
//! 8       8             request ID
//! OK:     4             pair count P, then P answer bytes (0/1); when
//!                       certificates are present, each *connected* pair
//!                       is followed (in pair order, after the answer
//!                       bytes) by u32 merge-count + count × (u32, u32)
//! error:  2             message length, then UTF-8 message
//! last    8             checksum64 trailer (responses always carry it,
//!                       signalled by flag bit 1)
//! ```
//!
//! [`RequestView`] parses a request payload **zero-copy** (in the spirit
//! of `LabelStoreView`): validation walks the bytes once, and the fault /
//! pair lists are iterated straight off the wire buffer without
//! materializing vectors.

use std::fmt;

/// First four payload bytes of every request.
pub const REQUEST_MAGIC: [u8; 4] = *b"FTCQ";
/// First four payload bytes of every response.
pub const RESPONSE_MAGIC: [u8; 4] = *b"FTCR";
/// The one protocol version this build speaks.
pub const PROTOCOL_VERSION: u16 = 1;
/// Hard ceiling on a frame payload (16 MiB ≈ 2M endpoint pairs); a
/// length prefix above this closes the connection.
pub const MAX_FRAME_BYTES: u32 = 1 << 24;
/// Request flag bit 0: return merge certificates with each answer.
pub const FLAG_CERTIFICATES: u16 = 1;
/// Request flag bit 1: the payload carries a trailing 8-byte integrity
/// checksum ([`ftc_compress::checksum64`] over every payload byte before
/// the trailer). Responses signal the same trailer via bit 1 of their
/// `u8` flags byte. The checksum turns in-flight byte corruption into a
/// typed [`ProtoErrorKind::ChecksumMismatch`] instead of a silently
/// wrong answer.
pub const FLAG_CHECKSUM: u16 = 2;
/// Response flag bit 1 (of the `u8` response flags): checksum trailer
/// present. Bit 0 remains "certificates present".
pub const RESPONSE_FLAG_CHECKSUM: u8 = 2;
/// Bytes of the optional integrity trailer.
pub const CHECKSUM_TRAILER_BYTES: usize = 8;

/// The exact message the server sends alongside
/// [`ErrorCode::QueryRejected`] when a certified response would exceed
/// [`MAX_FRAME_BYTES`]. Clients match it to retry transparently without
/// certificates.
pub const MSG_RETRY_WITHOUT_CERTIFICATES: &str =
    "certified response exceeds the frame cap; retry without certificates";

/// Typed error codes carried by error responses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request payload did not parse (bad magic, truncated fields,
    /// trailing bytes, bad UTF-8 in the graph ID).
    BadFrame = 1,
    /// The request's protocol version is not spoken by this server.
    UnsupportedVersion = 2,
    /// No graph is registered under the requested ID.
    UnknownGraph = 3,
    /// A fault named an edge the labeling does not contain.
    UnknownFault = 4,
    /// A query pair named a vertex outside the graph.
    VertexOutOfRange = 5,
    /// The session rejected the query (e.g. fault budget exceeded).
    QueryRejected = 6,
    /// The server is draining for shutdown.
    ShuttingDown = 7,
    /// A lazily-validated archive section failed its checksum on first
    /// touch while serving the request.
    ArchiveCorrupt = 8,
    /// The server shed this request (or the whole connection) because it
    /// is at its connection, batch, or deadline limit. Retryable.
    Overloaded = 9,
}

impl ErrorCode {
    /// The wire byte of this code.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte; `None` for unknown codes.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::BadFrame,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownGraph,
            4 => ErrorCode::UnknownFault,
            5 => ErrorCode::VertexOutOfRange,
            6 => ErrorCode::QueryRejected,
            7 => ErrorCode::ShuttingDown,
            8 => ErrorCode::ArchiveCorrupt,
            9 => ErrorCode::Overloaded,
            _ => return None,
        })
    }

    /// Whether a client may transparently retry a request rejected with
    /// this code: the request was never executed, only shed, so a replay
    /// is safe and likely to succeed once load or a drain passes.
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded | ErrorCode::ShuttingDown)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::BadFrame => "bad frame",
            ErrorCode::UnsupportedVersion => "unsupported protocol version",
            ErrorCode::UnknownGraph => "unknown graph",
            ErrorCode::UnknownFault => "unknown fault edge",
            ErrorCode::VertexOutOfRange => "vertex out of range",
            ErrorCode::QueryRejected => "query rejected",
            ErrorCode::ShuttingDown => "server shutting down",
            ErrorCode::ArchiveCorrupt => "served archive corrupt",
            ErrorCode::Overloaded => "server overloaded",
        };
        f.write_str(s)
    }
}

/// Why a payload failed to parse, and where.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Byte offset (into the payload) at which parsing failed.
    pub offset: usize,
    /// What went wrong there.
    pub kind: ProtoErrorKind,
}

/// The kinds of payload parse failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoErrorKind {
    /// The payload ended before a required field.
    Truncated,
    /// The magic bytes are not [`REQUEST_MAGIC`] / [`RESPONSE_MAGIC`].
    BadMagic,
    /// The version field names a protocol this build does not speak.
    UnsupportedVersion(u16),
    /// Bytes remain after the last field.
    TrailingBytes,
    /// The graph ID is not UTF-8.
    BadUtf8,
    /// An error response carried an unknown status byte.
    BadErrorCode(u8),
    /// The payload's integrity trailer did not match its bytes — the
    /// frame was corrupted in flight.
    ChecksumMismatch,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ProtoErrorKind::Truncated => write!(f, "payload truncated at byte {}", self.offset),
            ProtoErrorKind::BadMagic => write!(f, "bad magic at byte {}", self.offset),
            ProtoErrorKind::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} at byte {}",
                    self.offset
                )
            }
            ProtoErrorKind::TrailingBytes => {
                write!(
                    f,
                    "trailing bytes after payload end at byte {}",
                    self.offset
                )
            }
            ProtoErrorKind::BadUtf8 => write!(f, "graph ID is not UTF-8 at byte {}", self.offset),
            ProtoErrorKind::BadErrorCode(c) => {
                write!(f, "unknown error code {c} at byte {}", self.offset)
            }
            ProtoErrorKind::ChecksumMismatch => {
                write!(f, "payload checksum mismatch at byte {}", self.offset)
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Why a message could not be *encoded* (caller-side validation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A vertex endpoint does not fit the wire's `u32`.
    EndpointTooLarge(usize),
    /// The graph ID exceeds the `u16` length field.
    GraphIdTooLong(usize),
    /// The encoded payload would exceed [`MAX_FRAME_BYTES`].
    FrameTooLarge(usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::EndpointTooLarge(v) => write!(f, "vertex {v} does not fit u32"),
            EncodeError::GraphIdTooLong(n) => write!(f, "graph ID of {n} bytes exceeds u16"),
            EncodeError::FrameTooLarge(n) => {
                write!(
                    f,
                    "{n}-byte payload exceeds {MAX_FRAME_BYTES}-byte frame cap"
                )
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Strips and verifies the optional integrity trailer. `flagged` is
/// whether the payload's flags claim a trailer; on success the returned
/// slice is the payload body with the trailer removed.
fn strip_checksum(payload: &[u8], flagged: bool) -> Result<&[u8], ProtoError> {
    if !flagged {
        return Ok(payload);
    }
    let Some(split) = payload.len().checked_sub(CHECKSUM_TRAILER_BYTES) else {
        return Err(ProtoError {
            offset: payload.len(),
            kind: ProtoErrorKind::Truncated,
        });
    };
    let want = u64::from_le_bytes(payload[split..].try_into().unwrap());
    if ftc_compress::checksum64(&payload[..split]) != want {
        return Err(ProtoError {
            offset: split,
            kind: ProtoErrorKind::ChecksumMismatch,
        });
    }
    Ok(&payload[..split])
}

/// Appends the integrity trailer over `out[start..]` (the payload built
/// so far, excluding the 4-byte length prefix).
fn push_checksum(out: &mut Vec<u8>, payload_start: usize) {
    let sum = ftc_compress::checksum64(&out[payload_start..]);
    out.extend_from_slice(&sum.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Cursor: bounds-checked little-endian reads with located errors.
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn err(&self, kind: ProtoErrorKind) -> ProtoError {
        ProtoError {
            offset: self.pos,
            kind,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(self.err(ProtoErrorKind::Truncated));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An endpoint-pair list: `u32` count, then count × (u32, u32) —
    /// returned as the raw byte window (zero-copy; pairs are decoded
    /// lazily by [`PairIter`]).
    fn pair_list(&mut self) -> Result<&'a [u8], ProtoError> {
        let count = self.u32()? as usize;
        // 8 bytes per pair; the multiplication cannot overflow because
        // count came out of a ≤ 16 MiB payload check below via take().
        count
            .checked_mul(8)
            .ok_or(self.err(ProtoErrorKind::Truncated))
            .and_then(|bytes| self.take(bytes))
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(self.err(ProtoErrorKind::TrailingBytes));
        }
        Ok(())
    }
}

/// Lazy decoder over a raw `(u32, u32)` pair window.
#[derive(Clone, Copy, Debug)]
pub struct PairIter<'a> {
    raw: &'a [u8],
}

impl Iterator for PairIter<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.raw.len() < 8 {
            return None;
        }
        let a = u32::from_le_bytes(self.raw[0..4].try_into().unwrap());
        let b = u32::from_le_bytes(self.raw[4..8].try_into().unwrap());
        self.raw = &self.raw[8..];
        Some((a, b))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.raw.len() / 8;
        (n, Some(n))
    }
}

impl ExactSizeIterator for PairIter<'_> {}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// A zero-copy view over a request payload: parse validates the whole
/// layout once, then every accessor reads straight off the wire bytes.
#[derive(Clone, Copy, Debug)]
pub struct RequestView<'a> {
    flags: u16,
    request_id: u64,
    graph: &'a str,
    faults_raw: &'a [u8],
    pairs_raw: &'a [u8],
}

impl<'a> RequestView<'a> {
    /// Parses a request payload.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] locating the offending byte; arbitrary input never
    /// panics (pinned by the workspace proptests).
    pub fn parse(payload: &'a [u8]) -> Result<RequestView<'a>, ProtoError> {
        // The flags live at a fixed offset, so the integrity trailer can
        // be verified (and stripped) before field-by-field parsing —
        // corrupted frames fail closed with `ChecksumMismatch` instead
        // of parsing flipped bytes into a plausible request.
        let flagged = payload.len() >= 8
            && u16::from_le_bytes(payload[6..8].try_into().unwrap()) & FLAG_CHECKSUM != 0;
        let payload = strip_checksum(payload, flagged)?;
        let mut c = Cursor::new(payload);
        if c.take(4)? != REQUEST_MAGIC {
            return Err(ProtoError {
                offset: 0,
                kind: ProtoErrorKind::BadMagic,
            });
        }
        let version = c.u16()?;
        if version != PROTOCOL_VERSION {
            return Err(ProtoError {
                offset: 4,
                kind: ProtoErrorKind::UnsupportedVersion(version),
            });
        }
        let flags = c.u16()?;
        let request_id = c.u64()?;
        let graph_len = c.u16()? as usize;
        let graph_at = c.pos;
        let graph = std::str::from_utf8(c.take(graph_len)?).map_err(|_| ProtoError {
            offset: graph_at,
            kind: ProtoErrorKind::BadUtf8,
        })?;
        let faults_raw = c.pair_list()?;
        let pairs_raw = c.pair_list()?;
        c.finish()?;
        Ok(RequestView {
            flags,
            request_id,
            graph,
            faults_raw,
            pairs_raw,
        })
    }

    /// The request ID echoed back in the response.
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The raw flag bits.
    pub fn flags(&self) -> u16 {
        self.flags
    }

    /// Whether the client asked for merge certificates.
    pub fn want_certificates(&self) -> bool {
        self.flags & FLAG_CERTIFICATES != 0
    }

    /// The target graph ID.
    pub fn graph(&self) -> &'a str {
        self.graph
    }

    /// Number of fault edges.
    pub fn fault_count(&self) -> usize {
        self.faults_raw.len() / 8
    }

    /// The fault edges, decoded lazily off the wire bytes.
    pub fn faults(&self) -> PairIter<'a> {
        PairIter {
            raw: self.faults_raw,
        }
    }

    /// Number of query pairs.
    pub fn pair_count(&self) -> usize {
        self.pairs_raw.len() / 8
    }

    /// The s–t query pairs, decoded lazily off the wire bytes.
    pub fn pairs(&self) -> PairIter<'a> {
        PairIter {
            raw: self.pairs_raw,
        }
    }
}

fn push_pair_list(out: &mut Vec<u8>, pairs: &[(usize, usize)]) -> Result<(), EncodeError> {
    out.extend_from_slice(&(pairs.len() as u32).to_le_bytes());
    for &(a, b) in pairs {
        for v in [a, b] {
            let v32 = u32::try_from(v).map_err(|_| EncodeError::EndpointTooLarge(v))?;
            out.extend_from_slice(&v32.to_le_bytes());
        }
    }
    Ok(())
}

/// Seals a frame: back-fills the 4-byte length prefix reserved at
/// `start` and enforces [`MAX_FRAME_BYTES`].
fn seal_frame(out: &mut Vec<u8>, start: usize) -> Result<(), EncodeError> {
    let payload = out.len() - start - 4;
    if payload > MAX_FRAME_BYTES as usize {
        out.truncate(start);
        return Err(EncodeError::FrameTooLarge(payload));
    }
    out[start..start + 4].copy_from_slice(&(payload as u32).to_le_bytes());
    Ok(())
}

/// Appends one complete request **frame** (length prefix + payload) to
/// `out`.
///
/// # Errors
///
/// [`EncodeError`] when an endpoint, the graph ID, or the total payload
/// exceeds its wire field; `out` is left unchanged past its original
/// length on error.
pub fn encode_request(
    out: &mut Vec<u8>,
    request_id: u64,
    graph: &str,
    flags: u16,
    faults: &[(usize, usize)],
    pairs: &[(usize, usize)],
) -> Result<(), EncodeError> {
    let start = out.len();
    let fail = |out: &mut Vec<u8>, e| {
        out.truncate(start);
        Err(e)
    };
    if graph.len() > u16::MAX as usize {
        return fail(out, EncodeError::GraphIdTooLong(graph.len()));
    }
    out.extend_from_slice(&[0; 4]); // length prefix, sealed below
    out.extend_from_slice(&REQUEST_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(graph.len() as u16).to_le_bytes());
    out.extend_from_slice(graph.as_bytes());
    if let Err(e) = push_pair_list(out, faults).and_then(|()| push_pair_list(out, pairs)) {
        return fail(out, e);
    }
    if flags & FLAG_CHECKSUM != 0 {
        push_checksum(out, start + 4);
    }
    seal_frame(out, start)
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// A merge certificate as carried on the wire (mirrors
/// [`ftc_core::Certificate`]).
pub type WireCertificate = Vec<(u32, u32)>;

/// One decoded response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// The request ID this response answers.
    pub request_id: u64,
    /// The outcome.
    pub body: ResponseBody,
}

/// A decoded response body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseBody {
    /// Per-pair answers, in request order.
    Answers {
        /// `true` = connected.
        answers: Vec<bool>,
        /// Merge certificates per *connected* pair (`None` when the
        /// request did not ask for certificates). Entries align with
        /// `answers`; disconnected pairs carry `None`.
        certificates: Option<Vec<Option<WireCertificate>>>,
    },
    /// A typed error.
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Human-readable detail (names the offending argument).
        message: String,
    },
}

/// Appends one complete OK response frame to `out`. When `certificates`
/// is `Some`, its entries must align with `answers` (a `Some` cert for
/// every `true` answer).
pub fn encode_response_ok(
    out: &mut Vec<u8>,
    request_id: u64,
    answers: &[bool],
    certificates: Option<&[Option<WireCertificate>]>,
) -> Result<(), EncodeError> {
    let start = out.len();
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&RESPONSE_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(0); // status OK
    out.push(u8::from(certificates.is_some()) | RESPONSE_FLAG_CHECKSUM);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(answers.len() as u32).to_le_bytes());
    out.extend(answers.iter().map(|&a| u8::from(a)));
    if let Some(certs) = certificates {
        debug_assert_eq!(certs.len(), answers.len());
        for (cert, &answer) in certs.iter().zip(answers) {
            if !answer {
                continue;
            }
            let cert = cert.as_deref().unwrap_or(&[]);
            out.extend_from_slice(&(cert.len() as u32).to_le_bytes());
            for &(a, b) in cert {
                out.extend_from_slice(&a.to_le_bytes());
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
    }
    push_checksum(out, start + 4);
    seal_frame(out, start)
}

/// Appends one complete error response frame to `out`. The message is
/// truncated to the `u16` length field if oversized.
pub fn encode_response_err(out: &mut Vec<u8>, request_id: u64, code: ErrorCode, message: &str) {
    let start = out.len();
    out.extend_from_slice(&[0; 4]);
    out.extend_from_slice(&RESPONSE_MAGIC);
    out.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    out.push(code.as_u8());
    out.push(RESPONSE_FLAG_CHECKSUM);
    out.extend_from_slice(&request_id.to_le_bytes());
    let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
    push_checksum(out, start + 4);
    // An error frame is bounded by 16 + 2 + 65535 + 8 bytes — always
    // sealable.
    seal_frame(out, start).expect("error frame within cap");
}

/// Decodes a response payload.
///
/// # Errors
///
/// [`ProtoError`] locating the offending byte; arbitrary input never
/// panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    // As with requests, the response flags byte sits at a fixed offset;
    // verify and strip the integrity trailer before parsing fields.
    let flagged = payload.len() >= 8 && payload[7] & RESPONSE_FLAG_CHECKSUM != 0;
    let payload = strip_checksum(payload, flagged)?;
    let mut c = Cursor::new(payload);
    if c.take(4)? != RESPONSE_MAGIC {
        return Err(ProtoError {
            offset: 0,
            kind: ProtoErrorKind::BadMagic,
        });
    }
    let version = c.u16()?;
    if version != PROTOCOL_VERSION {
        return Err(ProtoError {
            offset: 4,
            kind: ProtoErrorKind::UnsupportedVersion(version),
        });
    }
    let status = c.u8()?;
    let flags = c.u8()?;
    let request_id = c.u64()?;
    if status != 0 {
        let code_at = 6;
        let code = ErrorCode::from_u8(status).ok_or(ProtoError {
            offset: code_at,
            kind: ProtoErrorKind::BadErrorCode(status),
        })?;
        let len = c.u16()? as usize;
        let msg_at = c.pos;
        let message = std::str::from_utf8(c.take(len)?)
            .map_err(|_| ProtoError {
                offset: msg_at,
                kind: ProtoErrorKind::BadUtf8,
            })?
            .to_string();
        c.finish()?;
        return Ok(Response {
            request_id,
            body: ResponseBody::Error { code, message },
        });
    }
    let count = c.u32()? as usize;
    let raw = c.take(count)?;
    let answers: Vec<bool> = raw.iter().map(|&b| b != 0).collect();
    let certificates = if flags & 1 != 0 {
        let mut certs: Vec<Option<WireCertificate>> = Vec::with_capacity(count);
        for &answer in &answers {
            if !answer {
                certs.push(None);
                continue;
            }
            let merges = c.u32()? as usize;
            let raw = c.take(merges.checked_mul(8).ok_or(ProtoError {
                offset: c.pos,
                kind: ProtoErrorKind::Truncated,
            })?)?;
            certs.push(Some(PairIter { raw }.collect()));
        }
        Some(certs)
    } else {
        None
    };
    c.finish()?;
    Ok(Response {
        request_id,
        body: ResponseBody::Answers {
            answers,
            certificates,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_zero_copy() {
        let mut frame = Vec::new();
        let faults = [(3usize, 7usize), (0, 1)];
        let pairs = [(5usize, 9usize), (2, 2), (0, 8)];
        encode_request(
            &mut frame,
            42,
            "prod/eu",
            FLAG_CERTIFICATES,
            &faults,
            &pairs,
        )
        .unwrap();
        let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        assert_eq!(len + 4, frame.len());
        let req = RequestView::parse(&frame[4..]).unwrap();
        assert_eq!(req.request_id(), 42);
        assert_eq!(req.graph(), "prod/eu");
        assert!(req.want_certificates());
        assert_eq!(req.fault_count(), 2);
        assert_eq!(req.faults().collect::<Vec<_>>(), vec![(3u32, 7u32), (0, 1)]);
        assert_eq!(req.pair_count(), 3);
        assert_eq!(
            req.pairs().collect::<Vec<_>>(),
            vec![(5u32, 9u32), (2, 2), (0, 8)]
        );
    }

    #[test]
    fn responses_round_trip() {
        let mut frame = Vec::new();
        encode_response_ok(&mut frame, 7, &[true, false, true], None).unwrap();
        let resp = decode_response(&frame[4..]).unwrap();
        assert_eq!(resp.request_id, 7);
        assert_eq!(
            resp.body,
            ResponseBody::Answers {
                answers: vec![true, false, true],
                certificates: None
            }
        );

        let certs: Vec<Option<WireCertificate>> =
            vec![Some(vec![(1, 2), (2, 5)]), None, Some(vec![])];
        let mut frame = Vec::new();
        encode_response_ok(&mut frame, 8, &[true, false, true], Some(&certs)).unwrap();
        let resp = decode_response(&frame[4..]).unwrap();
        match resp.body {
            ResponseBody::Answers {
                answers,
                certificates,
            } => {
                assert_eq!(answers, vec![true, false, true]);
                assert_eq!(certificates.unwrap(), certs);
            }
            other => panic!("unexpected body {other:?}"),
        }

        let mut frame = Vec::new();
        encode_response_err(&mut frame, 9, ErrorCode::UnknownGraph, "no graph \"x\"");
        let resp = decode_response(&frame[4..]).unwrap();
        assert_eq!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::UnknownGraph,
                message: "no graph \"x\"".into()
            }
        );
    }

    #[test]
    fn truncations_and_tampering_are_located_errors() {
        let mut frame = Vec::new();
        encode_request(&mut frame, 1, "g", 0, &[(0, 1)], &[(2, 3)]).unwrap();
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            let err = RequestView::parse(&payload[..cut]).unwrap_err();
            assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
        let mut extended = payload.to_vec();
        extended.push(0);
        assert_eq!(
            RequestView::parse(&extended).unwrap_err().kind,
            ProtoErrorKind::TrailingBytes
        );
        let mut bad_magic = payload.to_vec();
        bad_magic[0] ^= 0xff;
        assert_eq!(
            RequestView::parse(&bad_magic).unwrap_err().kind,
            ProtoErrorKind::BadMagic
        );
        let mut bad_version = payload.to_vec();
        bad_version[4] = 99;
        assert!(matches!(
            RequestView::parse(&bad_version).unwrap_err().kind,
            ProtoErrorKind::UnsupportedVersion(_)
        ));
        let mut bad_utf8 = payload.to_vec();
        bad_utf8[18] = 0xff; // the 1-byte graph ID
        assert_eq!(
            RequestView::parse(&bad_utf8).unwrap_err().kind,
            ProtoErrorKind::BadUtf8
        );
    }

    #[test]
    fn checksummed_requests_reject_every_single_byte_flip() {
        let mut frame = Vec::new();
        encode_request(
            &mut frame,
            11,
            "g",
            FLAG_CHECKSUM | FLAG_CERTIFICATES,
            &[(0, 1)],
            &[(2, 3)],
        )
        .unwrap();
        let payload = &frame[4..];
        let req = RequestView::parse(payload).unwrap();
        assert_eq!(req.request_id(), 11);
        assert!(req.want_certificates());
        // Any one-byte corruption is a typed parse error, never a
        // silently different request.
        for i in 0..payload.len() {
            let mut bad = payload.to_vec();
            bad[i] ^= 0x40;
            assert!(
                RequestView::parse(&bad).is_err(),
                "flip at byte {i} parsed anyway"
            );
        }
    }

    #[test]
    fn checksummed_responses_reject_every_single_byte_flip() {
        let mut frame = Vec::new();
        encode_response_ok(&mut frame, 5, &[true, false], None).unwrap();
        for i in 0..frame.len() - 4 {
            let mut bad = frame[4..].to_vec();
            bad[i] ^= 0x08;
            assert!(
                decode_response(&bad).is_err(),
                "flip at byte {i} decoded anyway"
            );
        }
        // The checksum trailer itself is covered: flipping only it fails.
        let mut bad = frame[4..].to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert_eq!(
            decode_response(&bad).unwrap_err().kind,
            ProtoErrorKind::ChecksumMismatch
        );

        // Error responses carry the trailer too.
        let mut frame = Vec::new();
        encode_response_err(&mut frame, 6, ErrorCode::Overloaded, "busy");
        let resp = decode_response(&frame[4..]).unwrap();
        assert_eq!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::Overloaded,
                message: "busy".into()
            }
        );
        let mut bad = frame[4..].to_vec();
        bad[20] ^= 0x01; // a message byte
        assert!(decode_response(&bad).is_err());
    }

    #[test]
    fn overloaded_code_round_trips_and_is_retryable() {
        assert_eq!(ErrorCode::from_u8(9), Some(ErrorCode::Overloaded));
        assert_eq!(ErrorCode::Overloaded.as_u8(), 9);
        assert!(ErrorCode::Overloaded.is_retryable());
        assert!(ErrorCode::ShuttingDown.is_retryable());
        assert!(!ErrorCode::BadFrame.is_retryable());
        assert!(!ErrorCode::QueryRejected.is_retryable());
    }

    #[test]
    fn encode_limits_are_enforced() {
        let mut out = vec![0xAA];
        assert_eq!(
            encode_request(&mut out, 1, "g", 0, &[(usize::MAX, 0)], &[]),
            Err(EncodeError::EndpointTooLarge(usize::MAX))
        );
        // Failed encodes leave prior buffer contents untouched.
        assert_eq!(out, vec![0xAA]);
        let long = "g".repeat(u16::MAX as usize + 1);
        assert!(matches!(
            encode_request(&mut out, 1, &long, 0, &[], &[]),
            Err(EncodeError::GraphIdTooLong(_))
        ));
        assert_eq!(out, vec![0xAA]);
    }
}

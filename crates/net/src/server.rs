//! The TCP serving loop: nonblocking accept, one handler thread per
//! connection, request routing through a [`ServiceRegistry`], and
//! cross-connection coalescing through the [`Coalescer`].
//!
//! There is no async runtime in the dependency tree (and none is
//! needed): the session hot path is CPU-bound, so the server runs a
//! hand-rolled accept loop over a nonblocking listener plus blocking
//! per-connection handler threads whose reads time out every
//! [`ServerConfig::read_poll`] to observe the shutdown flag. Graceful
//! shutdown ([`ServerHandle::shutdown`], wired to SIGINT/SIGTERM by
//! [`install_signal_shutdown`]) stops accepting, lets every in-flight
//! frame — including its coalesced batch — finish and flush its
//! response, then joins all handlers before [`Server::run`] returns.

use crate::coalesce::{CoalesceStats, Coalescer, SubmitError};
use crate::histogram::LatencyHistogram;
use crate::proto::{self, ErrorCode, ProtoErrorKind, RequestView, MAX_FRAME_BYTES};
use ftc_serve::{ServeError, ServiceRegistry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tunables of one [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Group in-flight requests by fault set across connections and
    /// answer each group from one pooled session (default `true`; the
    /// `false` arm exists for the loadgen comparison).
    pub coalesce: bool,
    /// Cap on simultaneously served connections; excess accepts are
    /// answered with a best-effort `Overloaded` frame and closed.
    pub max_connections: usize,
    /// Cap on simultaneously open coalescer batches; at the cap, new
    /// batches are shed with `Overloaded` instead of queueing (`0` =
    /// unbounded).
    pub max_inflight_batches: usize,
    /// Per-request deadline, measured from frame receipt: a request
    /// still queued in the coalescer when it expires is shed with
    /// `Overloaded` (`None` = no deadline).
    pub request_deadline: Option<Duration>,
    /// How long a blocked read waits before re-checking the shutdown
    /// flag (bounds shutdown latency, not throughput).
    pub read_poll: Duration,
    /// During shutdown, how long a *partially received* frame may keep
    /// trickling in before the connection is abandoned.
    pub drain_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            coalesce: true,
            max_connections: 1024,
            max_inflight_batches: 0,
            request_deadline: None,
            read_poll: Duration::from_millis(25),
            drain_timeout: Duration::from_secs(2),
        }
    }
}

/// A snapshot of the server's connection-level counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted into a handler thread.
    pub accepted: u64,
    /// Connections shed at accept time (connection cap reached).
    pub shed_connections: u64,
    /// Handler threads currently serving a connection.
    pub active: u64,
}

struct Shared {
    registry: Arc<ServiceRegistry>,
    coalescer: Coalescer,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    shed_connections: AtomicU64,
    active: AtomicU64,
    /// Service latency (frame receipt to answer encoded) of requests
    /// answered successfully — shed and failed requests are excluded,
    /// so this is exactly the "accepted" latency overload reports need.
    served: Mutex<LatencyHistogram>,
}

impl Shared {
    fn record_served(&self, started: Instant) {
        self.served
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(started.elapsed().as_nanos() as u64);
    }
}

/// A cloneable remote control for a running [`Server`]: shutdown and
/// stats, usable from any thread (signal watchers, tests, the loadgen).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the server to drain and exit: stop accepting, answer every
    /// in-flight frame (and its coalesced batch), close connections,
    /// return from [`Server::run`]. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::Acquire)
    }

    /// The coalescer's lifetime counters (requests, coalesced, batches
    /// = sessions built, pairs answered, requests shed).
    pub fn stats(&self) -> CoalesceStats {
        self.shared.coalescer.stats()
    }

    /// The server's connection-level counters (accepted / shed at
    /// accept / currently active).
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            shed_connections: self.shared.shed_connections.load(Ordering::Relaxed),
            active: self.shared.active.load(Ordering::Relaxed),
        }
    }

    /// A snapshot of the service-latency histogram of successfully
    /// answered requests (frame receipt to answer encoded, server-side
    /// clock — unaffected by client scheduling or the network).
    pub fn served_latency(&self) -> LatencyHistogram {
        self.shared
            .served
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// The registry this server routes graph IDs through.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.shared.registry
    }
}

/// A bound-but-not-yet-running TCP server over a [`ServiceRegistry`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    config: ServerConfig,
    addr: SocketAddr,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port) over `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        registry: Arc<ServiceRegistry>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                registry,
                coalescer: Coalescer::with_max_inflight(
                    config.coalesce,
                    config.max_inflight_batches,
                ),
                shutdown: AtomicBool::new(false),
                accepted: AtomicU64::new(0),
                shed_connections: AtomicU64::new(0),
                active: AtomicU64::new(0),
                served: Mutex::new(LatencyHistogram::new()),
            }),
            config,
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A remote control for this server (clone freely; keep one before
    /// calling [`Server::run`], which consumes the server).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: self.shared.clone(),
            addr: self.addr,
        }
    }

    /// Serves until [`ServerHandle::shutdown`]: accepts connections,
    /// spawns one handler thread each, and on shutdown drains in-flight
    /// work and joins every handler before returning.
    ///
    /// # Errors
    ///
    /// Propagates fatal `accept` failures (after joining handlers).
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut fatal = None;
        while !self.shared.shutdown.load(Ordering::Acquire) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    handlers.retain(|h| !h.is_finished());
                    if handlers.len() >= self.config.max_connections {
                        // Shed, don't queue: tell the peer *why* before
                        // closing so a resilient client backs off and
                        // retries instead of treating it as a crash.
                        self.shared.shed_connections.fetch_add(1, Ordering::Relaxed);
                        overloaded_close(stream);
                        continue;
                    }
                    self.shared.accepted.fetch_add(1, Ordering::Relaxed);
                    let shared = self.shared.clone();
                    let config = self.config.clone();
                    handlers.push(std::thread::spawn(move || {
                        shared.active.fetch_add(1, Ordering::Relaxed);
                        handle_connection(stream, &shared, &config);
                        shared.active.fetch_sub(1, Ordering::Relaxed);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.config.read_poll);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }
        // Drain: handlers observe the flag (set by shutdown, or set here
        // on a fatal accept error) within one read_poll, finish their
        // in-flight frame + batch, flush, and exit.
        self.shared.shutdown.store(true, Ordering::Release);
        for h in handlers {
            let _ = h.join();
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Best-effort connection-level rejection: one `Overloaded` error frame
/// (request ID 0 — no request was read) and an immediate close.
fn overloaded_close(mut stream: TcpStream) {
    let mut buf = Vec::new();
    proto::encode_response_err(
        &mut buf,
        0,
        ErrorCode::Overloaded,
        "connection limit reached; retry with backoff",
    );
    let _ = stream.set_nodelay(true);
    let _ = stream.write_all(&buf);
}

/// What one poll of the frame reader produced.
enum FrameEvent {
    /// A complete frame payload is staged in the reader.
    Frame,
    /// Clean EOF at a frame boundary.
    Eof,
    /// Shutdown observed at a frame boundary.
    Shutdown,
    /// The peer violated framing (oversized length prefix / EOF or
    /// drain-timeout mid-frame): answer if possible, then close.
    Violation,
}

/// Incremental length-prefixed frame reader that survives read timeouts
/// mid-frame (the handler's shutdown poll) without losing position.
struct FrameReader {
    buf: Vec<u8>,
    filled: usize,
}

impl FrameReader {
    fn new() -> FrameReader {
        FrameReader {
            buf: vec![0; 4096],
            filled: 0,
        }
    }

    /// The staged payload after a [`FrameEvent::Frame`].
    fn payload(&self) -> &[u8] {
        &self.buf[4..self.filled]
    }

    fn next_frame(
        &mut self,
        stream: &mut TcpStream,
        shutdown: &AtomicBool,
        config: &ServerConfig,
    ) -> std::io::Result<FrameEvent> {
        self.filled = 0;
        let mut drain_deadline: Option<Instant> = None;
        loop {
            let target = if self.filled < 4 {
                4
            } else {
                let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap());
                if len > MAX_FRAME_BYTES {
                    return Ok(FrameEvent::Violation);
                }
                4 + len as usize
            };
            if self.filled == target && self.filled >= 4 {
                return Ok(FrameEvent::Frame);
            }
            if self.buf.len() < target {
                self.buf.resize(target, 0);
            }
            if shutdown.load(Ordering::Acquire) {
                if self.filled == 0 {
                    return Ok(FrameEvent::Shutdown);
                }
                // Mid-frame: grant the peer a bounded window to finish
                // sending so the request can still be answered.
                let deadline =
                    *drain_deadline.get_or_insert_with(|| Instant::now() + config.drain_timeout);
                if Instant::now() >= deadline {
                    return Ok(FrameEvent::Violation);
                }
            }
            match stream.read(&mut self.buf[self.filled..target]) {
                Ok(0) => {
                    return Ok(if self.filled == 0 {
                        FrameEvent::Eof
                    } else {
                        FrameEvent::Violation // truncated frame
                    });
                }
                Ok(n) => self.filled += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, config: &ServerConfig) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(config.read_poll)).is_err() {
        return;
    }
    let mut reader = FrameReader::new();
    let mut wbuf = Vec::new();
    loop {
        match reader.next_frame(&mut stream, &shared.shutdown, config) {
            Ok(FrameEvent::Frame) => {
                wbuf.clear();
                // The deadline clock starts at frame receipt: time spent
                // queued in the coalescer counts against it.
                let deadline = config.request_deadline.map(|d| Instant::now() + d);
                let keep = process_frame(reader.payload(), shared, &mut wbuf, deadline);
                if stream.write_all(&wbuf).is_err() || stream.flush().is_err() {
                    return;
                }
                // Drain semantics: the in-flight frame was answered;
                // once shutdown is requested no further frames start.
                if !keep || shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Ok(FrameEvent::Violation) => {
                // Best effort: name the violation before closing (the
                // stream can no longer be trusted to stay in sync).
                wbuf.clear();
                proto::encode_response_err(
                    &mut wbuf,
                    0,
                    ErrorCode::BadFrame,
                    "violated frame length prefix",
                );
                let _ = stream.write_all(&wbuf);
                return;
            }
            Ok(FrameEvent::Eof) | Ok(FrameEvent::Shutdown) | Err(_) => return,
        }
    }
}

fn serve_error_frame(wbuf: &mut Vec<u8>, request_id: u64, e: &ServeError) {
    let code = match e {
        ServeError::UnknownEdge { .. } | ServeError::UnknownEdgeId { .. } => {
            ErrorCode::UnknownFault
        }
        ServeError::VertexOutOfRange { .. } => ErrorCode::VertexOutOfRange,
        ServeError::Query(_) => ErrorCode::QueryRejected,
        ServeError::Corrupt(_) => ErrorCode::ArchiveCorrupt,
    };
    proto::encode_response_err(wbuf, request_id, code, &e.to_string());
}

/// Parses and answers one frame into `wbuf`; returns whether the
/// connection may keep going (length-delimited framing keeps the stream
/// in sync even for malformed payloads, so parse errors are answered
/// and survivable).
fn process_frame(
    payload: &[u8],
    shared: &Shared,
    wbuf: &mut Vec<u8>,
    deadline: Option<Instant>,
) -> bool {
    let started = Instant::now();
    let req = match RequestView::parse(payload) {
        Ok(req) => req,
        Err(e) => {
            let code = match e.kind {
                ProtoErrorKind::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
                _ => ErrorCode::BadFrame,
            };
            proto::encode_response_err(wbuf, 0, code, &e.to_string());
            return true;
        }
    };
    let id = req.request_id();
    let Some(service) = shared.registry.get(req.graph()) else {
        proto::encode_response_err(
            wbuf,
            id,
            ErrorCode::UnknownGraph,
            &format!("no graph \"{}\" is registered", req.graph()),
        );
        return true;
    };
    // Pre-validate pair vertices so a coalesced batch can never fail on
    // *another* request's bad argument (fault validation stays inside
    // the service, which checks faults eagerly per batch).
    let n = service.n();
    if let Some(v) = req
        .pairs()
        .flat_map(|(s, t)| [s, t])
        .find(|&v| v as usize >= n)
    {
        proto::encode_response_err(
            wbuf,
            id,
            ErrorCode::VertexOutOfRange,
            &format!("vertex {v} out of range (n = {n})"),
        );
        return true;
    }
    let faults: Vec<(usize, usize)> = req
        .faults()
        .map(|(u, v)| (u as usize, v as usize))
        .collect();
    let pairs: Vec<(usize, usize)> = req.pairs().map(|(s, t)| (s as usize, t as usize)).collect();

    if req.want_certificates() {
        // The certificate path bypasses coalescing (it is the debug /
        // verification surface; answers stay per-request).
        match service.query_certified(&faults, &pairs) {
            Ok(certs) => {
                let answers: Vec<bool> = certs.iter().map(|c| c.is_some()).collect();
                shared.record_served(started);
                if proto::encode_response_ok(wbuf, id, &answers, Some(&certs)).is_err() {
                    // Certificates blew the frame cap; the answers alone
                    // (one byte per requested pair) always fit.
                    proto::encode_response_err(
                        wbuf,
                        id,
                        ErrorCode::QueryRejected,
                        proto::MSG_RETRY_WITHOUT_CERTIFICATES,
                    );
                }
            }
            Err(e) => serve_error_frame(wbuf, id, &e),
        }
        return true;
    }
    match shared
        .coalescer
        .submit_deadline(&service, req.graph(), &faults, &pairs, deadline)
    {
        Ok(answers) => {
            // One answer byte per requested pair: strictly smaller than
            // the request frame that carried the pairs.
            shared.record_served(started);
            proto::encode_response_ok(wbuf, id, &answers, None)
                .expect("plain response within frame cap");
        }
        Err(SubmitError::Overloaded) => {
            proto::encode_response_err(
                wbuf,
                id,
                ErrorCode::Overloaded,
                "request shed: server overloaded; retry with backoff",
            );
        }
        Err(SubmitError::Serve(e)) => serve_error_frame(wbuf, id, &e),
    }
    true
}

/// Installs SIGINT/SIGTERM handlers that trigger a graceful
/// [`ServerHandle::shutdown`]. The handler itself only flips an atomic
/// (async-signal-safe); a watcher thread converts it into the shutdown
/// call. No-op on non-Unix targets.
pub fn install_signal_shutdown(handle: ServerHandle) {
    install_signal_handlers(handle, None)
}

/// [`install_signal_shutdown`] plus an optional SIGHUP **reload** hook:
/// when `reload` is `Some`, SIGHUP runs the callback on the watcher
/// thread (typically a blue/green re-open + [`ServiceRegistry::swap`]
/// of every archive the server was started with) instead of its default
/// terminate action. Signal handlers only flip atomics
/// (async-signal-safe); the watcher thread does the real work, so a
/// reload that takes seconds never runs in signal context. No-op on
/// non-Unix targets.
pub fn install_signal_handlers(handle: ServerHandle, reload: Option<Box<dyn FnMut() + Send>>) {
    #[cfg(unix)]
    {
        static SIGNALED: AtomicBool = AtomicBool::new(false);
        static RELOAD: AtomicBool = AtomicBool::new(false);
        extern "C" fn on_signal(_sig: i32) {
            SIGNALED.store(true, Ordering::SeqCst);
        }
        extern "C" fn on_reload(_sig: i32) {
            RELOAD.store(true, Ordering::SeqCst);
        }
        // The process links the platform C library already; declaring
        // `signal` directly avoids a libc crate dependency.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGHUP: i32 = 1;
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
            if reload.is_some() {
                signal(SIGHUP, on_reload as *const () as usize);
            }
        }
        let mut reload = reload;
        std::thread::spawn(move || loop {
            if SIGNALED.load(Ordering::SeqCst) {
                handle.shutdown();
                return;
            }
            if RELOAD.swap(false, Ordering::SeqCst) {
                if let Some(f) = reload.as_mut() {
                    f();
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    #[cfg(not(unix))]
    {
        let _ = (handle, reload);
    }
}

// The serving loop's shared state crosses threads by construction.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServerHandle>();
    assert_send_sync::<Shared>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use ftc_core::{FtcScheme, Params};
    use ftc_graph::Graph;
    use ftc_serve::ConnectivityService;

    fn spawn_server(
        coalesce: bool,
    ) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
        let registry = Arc::new(ServiceRegistry::new());
        let scheme = FtcScheme::build(&Graph::torus(3, 4), &Params::deterministic(2)).unwrap();
        registry.insert(
            "torus",
            ConnectivityService::from_labels(scheme.into_labels()),
        );
        let server = Server::bind(
            registry,
            "127.0.0.1:0",
            ServerConfig {
                coalesce,
                read_poll: Duration::from_millis(5),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn serves_queries_and_shuts_down_cleanly() {
        let (handle, join) = spawn_server(true);
        let mut client = Client::connect(handle.addr()).unwrap();
        let answers = client
            .query("torus", &[(0, 1), (0, 4)], &[(0, 10), (3, 3)])
            .unwrap();
        assert_eq!(answers, vec![true, true]);
        let stats = handle.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.pairs, 2);
        handle.shutdown();
        join.join().unwrap().unwrap();
        // A fresh connection after shutdown cannot complete a query.
        assert!(Client::connect(handle.addr())
            .and_then(|mut c| c
                .query("torus", &[], &[(0, 1)])
                .map_err(|_| std::io::Error::other("refused")))
            .is_err());
    }

    #[test]
    fn shutdown_is_idempotent_and_observable() {
        let (handle, join) = spawn_server(false);
        assert!(!handle.is_shutdown());
        handle.shutdown();
        handle.shutdown();
        assert!(handle.is_shutdown());
        join.join().unwrap().unwrap();
    }
}

//! The text query grammar shared by `ftc-cli serve` and `ftc-net`'s
//! debug tooling.
//!
//! One query per line: `s t [u:v ...]` — a vertex pair followed by zero
//! or more `u:v` fault edges. `#` starts a comment; blank lines are
//! skipped. Answers render as `s t connected|disconnected`. The grammar
//! lives here (rather than in `ftc-cli`) so the CLI's stdin serving
//! loop and [`crate::client::Client::query_line`] can never drift.

use std::fmt;

/// One parsed query line: a vertex pair plus its fault edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextQuery {
    /// Query source vertex.
    pub s: usize,
    /// Query target vertex.
    pub t: usize,
    /// Fault edges, as written (unnormalized endpoint order).
    pub faults: Vec<(usize, usize)>,
}

/// A query line that does not match the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// The line is missing `s` or `t`, or one of them is not an integer.
    BadVertex {
        /// The offending line (comment-stripped, trimmed).
        line: String,
    },
    /// A fault token is not `U:V` with integer endpoints.
    BadFault {
        /// The offending token.
        token: String,
    },
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::BadVertex { line } => {
                write!(f, "query '{line}': expected 's t [u:v ...]'")
            }
            TextError::BadFault { token } => {
                write!(f, "fault expects U:V, got '{token}'")
            }
        }
    }
}

impl std::error::Error for TextError {}

/// Parses a `U:V` endpoint pair (fault-edge token syntax, also used by
/// `ftc-cli`'s `--fault` / `--pair` flags).
///
/// # Errors
///
/// [`TextError::BadFault`] when the token is not two integers joined by
/// a colon.
pub fn parse_endpoint_pair(token: &str) -> Result<(usize, usize), TextError> {
    let bad = || TextError::BadFault {
        token: token.to_string(),
    };
    let (u, v) = token.split_once(':').ok_or_else(bad)?;
    let u: usize = u.parse().map_err(|_| bad())?;
    let v: usize = v.parse().map_err(|_| bad())?;
    Ok((u, v))
}

/// Parses one `s t [u:v ...]` query line. `Ok(None)` for blank lines
/// and comments.
///
/// # Errors
///
/// [`TextError`] when a non-blank line does not match the grammar.
pub fn parse_query_line(line: &str) -> Result<Option<TextQuery>, TextError> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let mut parse_vertex = || -> Result<usize, TextError> {
        it.next()
            .and_then(|tok| tok.parse().ok())
            .ok_or_else(|| TextError::BadVertex {
                line: line.to_string(),
            })
    };
    let s = parse_vertex()?;
    let t = parse_vertex()?;
    let faults = it
        .map(parse_endpoint_pair)
        .collect::<Result<Vec<_>, TextError>>()?;
    Ok(Some(TextQuery { s, t, faults }))
}

/// The answer-line verdict word.
#[must_use]
pub fn verdict(connected: bool) -> &'static str {
    if connected {
        "connected"
    } else {
        "disconnected"
    }
}

/// Formats one answer line: `s t connected|disconnected`.
#[must_use]
pub fn answer_line(s: usize, t: usize, connected: bool) -> String {
    format!("{s} {t} {}", verdict(connected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bare_pair() {
        let q = parse_query_line("3 7").unwrap().unwrap();
        assert_eq!(
            q,
            TextQuery {
                s: 3,
                t: 7,
                faults: vec![]
            }
        );
    }

    #[test]
    fn parses_faults_and_comment() {
        let q = parse_query_line("  0 5 1:2 9:4  # note").unwrap().unwrap();
        assert_eq!(q.s, 0);
        assert_eq!(q.t, 5);
        assert_eq!(q.faults, vec![(1, 2), (9, 4)]);
    }

    #[test]
    fn blank_and_comment_lines_are_none() {
        assert_eq!(parse_query_line("").unwrap(), None);
        assert_eq!(parse_query_line("   ").unwrap(), None);
        assert_eq!(parse_query_line("# all of it").unwrap(), None);
    }

    #[test]
    fn missing_target_is_bad_vertex() {
        assert!(matches!(
            parse_query_line("42"),
            Err(TextError::BadVertex { .. })
        ));
    }

    #[test]
    fn non_integer_vertex_is_bad_vertex() {
        assert!(matches!(
            parse_query_line("a b"),
            Err(TextError::BadVertex { .. })
        ));
    }

    #[test]
    fn bad_fault_token() {
        assert!(matches!(
            parse_query_line("1 2 3-4"),
            Err(TextError::BadFault { .. })
        ));
        assert!(matches!(
            parse_endpoint_pair("1:x"),
            Err(TextError::BadFault { .. })
        ));
    }

    #[test]
    fn answer_line_format() {
        assert_eq!(answer_line(3, 9, true), "3 9 connected");
        assert_eq!(answer_line(0, 1, false), "0 1 disconnected");
    }
}

//! End-to-end tests of the shipped binaries: spawn `ftc-server` on a
//! real archive file, talk to it with [`ftc_net::Client`], and shut it
//! down with SIGTERM the way an operator (or the CI harness) would.

use ftc_core::store::{EdgeEncoding, LabelStore};
use ftc_core::{FtcScheme, Params};
use ftc_graph::Graph;
use ftc_net::Client;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};

/// Temp-dir path that survives until the test process exits.
fn scratch_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ftc-net-bin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn write_archive(path: &std::path::Path) -> Graph {
    let g = Graph::torus(3, 4);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    std::fs::write(
        path,
        LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full),
    )
    .unwrap();
    g
}

fn spawn_server(args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ftc-server"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The server prints exactly one "listening on HOST:PORT" line once
    // it is accepting connections — the contract scripts rely on.
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().unwrap())
        .read_line(&mut line)
        .unwrap();
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .trim()
        .to_string();
    (child, addr)
}

#[test]
fn server_binary_serves_and_drains_on_sigterm() {
    let archive = scratch_path("torus.ftc");
    write_archive(&archive);
    let spec = format!("torus={}", archive.display());
    let (mut child, addr) = spawn_server(&[&spec]);

    let mut client = Client::connect(&addr).unwrap();
    let answers = client.query("torus", &[(0, 1)], &[(0, 5), (2, 2)]).unwrap();
    assert_eq!(answers.len(), 2);
    assert!(answers[1], "(2,2) is trivially connected");

    // SIGTERM → graceful drain → exit code 0 with a drain summary.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill -TERM failed");
    let exit = child.wait().unwrap();
    assert!(exit.success(), "server exited with {exit}");

    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        stderr.contains("drained:"),
        "missing drain summary in stderr: {stderr:?}"
    );
    assert!(
        stderr.contains("1 requests"),
        "stats miscounted: {stderr:?}"
    );
}

/// Reads stderr lines until one contains `needle` (the reload log
/// lines are the operator contract being pinned here).
fn next_line_containing(stderr: &mut impl BufRead, needle: &str) -> String {
    for _ in 0..50 {
        let mut line = String::new();
        let n = stderr.read_line(&mut line).unwrap();
        assert!(n > 0, "server stderr closed while waiting for {needle:?}");
        if line.contains(needle) {
            return line;
        }
    }
    panic!("no stderr line contained {needle:?}");
}

/// A SIGHUP pointing at a corrupt (or mid-rewrite, torn) archive must
/// never take the graph down: the reload fails with a typed log line,
/// the previous generation keeps serving, and a later SIGHUP with a
/// good archive swaps forward.
#[test]
fn sighup_with_corrupt_archive_keeps_previous_generation() {
    let archive = scratch_path("reload.ftc");
    write_archive(&archive);
    let spec = format!("g={}", archive.display());
    let (mut child, addr) = spawn_server(&[&spec]);
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let pid = child.id().to_string();

    let mut client = Client::connect(&addr).unwrap();
    assert_eq!(
        client.query("g", &[(0, 1)], &[(0, 5)]).unwrap().len(),
        1,
        "first generation must serve"
    );

    // Replace the archive with garbage via rename — a fresh inode, the
    // way any writer (even a corrupt one) must publish: the previous
    // generation's mmap stays valid. (An in-place truncating write
    // would yank pages out from under the live mapping — exactly the
    // hazard the atomic-writer discipline exists to rule out.)
    let garbage = scratch_path("reload.ftc.garbage");
    std::fs::write(&garbage, b"FTC?this is not an archive").unwrap();
    std::fs::rename(&garbage, &archive).unwrap();
    assert!(Command::new("kill")
        .args(["-HUP", &pid])
        .status()
        .unwrap()
        .success());
    let line = next_line_containing(&mut stderr, "reload of");
    assert!(
        line.contains("reload of \"g\" failed, keeping previous archive"),
        "unexpected reload failure line: {line:?}"
    );

    // The previous generation is still live and still correct.
    assert_eq!(client.query("g", &[], &[(2, 2)]).unwrap(), vec![true]);
    assert_eq!(
        client.query("g", &[(0, 1)], &[(0, 5)]).unwrap().len(),
        1,
        "previous generation must keep serving after the failed reload"
    );

    // Restore a good archive through the atomic writer and reload:
    // the swap goes forward.
    let g = Graph::torus(3, 4);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    ftc_core::io::write_file_atomic(
        &archive,
        &LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full),
    )
    .unwrap();
    assert!(Command::new("kill")
        .args(["-HUP", &pid])
        .status()
        .unwrap()
        .success());
    let line = next_line_containing(&mut stderr, "reloaded");
    assert!(
        line.contains("reloaded \"g\" generation"),
        "unexpected reload line: {line:?}"
    );
    assert_eq!(client.query("g", &[], &[(2, 2)]).unwrap(), vec![true]);

    Command::new("kill").args(["-TERM", &pid]).status().unwrap();
    assert!(child.wait().unwrap().success());
}

#[test]
fn server_binary_rejects_bad_usage() {
    // No archives at all.
    let out = Command::new(env!("CARGO_BIN_EXE_ftc-server"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "stderr: {stderr}");

    // An unreadable archive path fails up front, before binding.
    let out = Command::new(env!("CARGO_BIN_EXE_ftc-server"))
        .arg("g=/definitely/not/here.ftc")
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn loadgen_emit_graph_writes_a_buildable_edge_list() {
    let out_path = scratch_path("workload-edges.txt");
    let out = Command::new(env!("CARGO_BIN_EXE_ftc-loadgen"))
        .args(["--quick", "--emit-graph"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("ftc-cli build"),
        "missing build hint: {stdout}"
    );

    // The emitted file is the `ftc-cli build` edge-list format:
    // comment header, then one "u v" pair per line.
    let text = std::fs::read_to_string(&out_path).unwrap();
    let mut edges = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u: usize = it.next().unwrap().parse().unwrap();
        let v: usize = it.next().unwrap().parse().unwrap();
        assert!(it.next().is_none(), "extra tokens: {line:?}");
        assert_ne!(u, v, "self-loop in emitted graph");
        edges += 1;
    }
    assert!(edges >= 200, "suspiciously few edges: {edges}");
}

#[test]
fn client_pipelines_against_the_binary() {
    let archive = scratch_path("torus2.ftc");
    write_archive(&archive);
    let spec = format!("torus={}", archive.display());
    let (mut child, addr) = spawn_server(&[&spec]);

    // Pipelined: several requests in flight on one connection, answers
    // matched back up by request ID.
    let mut client = Client::connect(&addr).unwrap();
    let ids: Vec<u64> = (0..8)
        .map(|i| {
            client
                .send("torus", &[(0, 1)], &[(i % 12, (i + 3) % 12)])
                .unwrap()
        })
        .collect();
    for want in ids {
        let resp = client.recv().unwrap();
        assert_eq!(resp.request_id, want, "responses arrived out of order");
    }

    // Raw-socket misuse against the real binary: a typed error frame,
    // not a dead server.
    let mut raw = std::net::TcpStream::connect(&addr).unwrap();
    raw.write_all(&7u32.to_le_bytes()).unwrap();
    raw.write_all(b"garbage").unwrap();
    let mut prefix = [0u8; 4];
    raw.read_exact(&mut prefix).unwrap();
    drop(raw);
    assert_eq!(client.query("torus", &[], &[(0, 1)]).unwrap(), vec![true]);

    Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(child.wait().unwrap().success());
}

//! Fault-tolerant approximate distance labeling (Corollary 1, instantiated
//! via certificate paths).
//!
//! The paper's Corollary 1 derives an `O(|F|k)`-approximate distance
//! labeling from any f-FTC labeling through the Dory–Parter reduction
//! (Thorup–Zwick tree covers). As recorded in DESIGN.md §6, this
//! repository substitutes the tree-cover machinery with the certificate
//! paths of the routing layer: the estimate is the length of the
//! fault-avoiding path extracted from the connectivity certificate — an
//! upper bound on the true distance whose empirical approximation ratio
//! experiment E9 measures against the `O(|F|·k)` shape.

use crate::router::{ForbiddenSetRouter, RouteError};
use ftc_core::{BuildError, Params};
use ftc_graph::{connectivity, EdgeId, Graph, VertexId};

/// A distance estimate together with the ground truth (when requested).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistanceEstimate {
    /// The labeling-derived estimate (path length; `None` = disconnected).
    pub estimate: Option<usize>,
    /// The exact distance in `G − F` (`None` = disconnected).
    pub exact: Option<usize>,
}

impl DistanceEstimate {
    /// The approximation ratio (`None` when disconnected or `s == t`).
    pub fn ratio(&self) -> Option<f64> {
        match (self.estimate, self.exact) {
            (Some(est), Some(ex)) if ex > 0 => Some(est as f64 / ex as f64),
            _ => None,
        }
    }
}

/// The fault-tolerant approximate distance labeling.
#[derive(Debug)]
pub struct DistanceLabeling {
    router: ForbiddenSetRouter,
    g: Graph,
}

impl DistanceLabeling {
    /// Builds the labeling for up to `f` faults.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the labeling construction.
    pub fn new(g: &Graph, f: usize) -> Result<DistanceLabeling, BuildError> {
        Ok(DistanceLabeling {
            router: ForbiddenSetRouter::with_params(g, &Params::deterministic(f))?,
            g: g.clone(),
        })
    }

    /// Estimates the `s`–`t` distance in `G − F` (an upper bound; `None`
    /// when disconnected).
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] from the route extraction.
    pub fn estimate(
        &self,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<Option<usize>, RouteError> {
        Ok(self.router.route(s, t, faults)?.map(|p| p.len() - 1))
    }

    /// Estimates and compares with the exact distance.
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] from the route extraction.
    pub fn estimate_with_truth(
        &self,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<DistanceEstimate, RouteError> {
        Ok(DistanceEstimate {
            estimate: self.estimate(s, t, faults)?,
            exact: connectivity::distance_avoiding(&self.g, s, t, faults),
        })
    }

    /// Label-size accounting of the underlying scheme.
    pub fn size_report(&self) -> ftc_core::SizeReport {
        self.router.size_report()
    }

    /// Weighted estimate (Corollary 1 is stated for weighted graphs with
    /// polynomially bounded weights): the total weight of the extracted
    /// fault-avoiding path — an upper bound on the weighted distance.
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] from the route extraction.
    ///
    /// # Panics
    ///
    /// Panics if `weights` was not built over this labeling's graph.
    pub fn estimate_weighted(
        &self,
        weights: &ftc_graph::EdgeWeights,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<Option<u64>, RouteError> {
        Ok(self.router.route(s, t, faults)?.map(|p| {
            weights
                .path_weight(&self.g, &p)
                .expect("routed paths consist of graph edges")
        }))
    }

    /// Weighted estimate together with the exact Dijkstra distance.
    ///
    /// # Errors
    ///
    /// Propagates [`RouteError`] from the route extraction.
    pub fn estimate_weighted_with_truth(
        &self,
        weights: &ftc_graph::EdgeWeights,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<WeightedEstimate, RouteError> {
        Ok(WeightedEstimate {
            estimate: self.estimate_weighted(weights, s, t, faults)?,
            exact: ftc_graph::weighted_distance_avoiding(&self.g, weights, s, t, faults),
        })
    }
}

/// A weighted distance estimate with ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedEstimate {
    /// Labeling-derived upper bound (`None` = disconnected).
    pub estimate: Option<u64>,
    /// Exact Dijkstra distance in `G − F`.
    pub exact: Option<u64>,
}

impl WeightedEstimate {
    /// Approximation ratio (`None` when disconnected or at distance 0).
    pub fn ratio(&self) -> Option<f64> {
        match (self.estimate, self.exact) {
            (Some(est), Some(ex)) if ex > 0 => Some(est as f64 / ex as f64),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_are_upper_bounds() {
        let g = Graph::torus(3, 4);
        let d = DistanceLabeling::new(&g, 2).unwrap();
        for faults in [vec![], vec![0], vec![1, 7]] {
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let e = d.estimate_with_truth(s, t, &faults).unwrap();
                    match (e.estimate, e.exact) {
                        (Some(est), Some(ex)) => assert!(est >= ex, "estimate below truth"),
                        (None, None) => {}
                        other => panic!("connectivity disagreement {other:?} for ({s},{t})"),
                    }
                }
            }
        }
    }

    #[test]
    fn zero_faults_zero_distance() {
        let g = Graph::path(5);
        let d = DistanceLabeling::new(&g, 1).unwrap();
        assert_eq!(d.estimate(2, 2, &[]).unwrap(), Some(0));
        assert_eq!(d.estimate(0, 4, &[]).unwrap(), Some(4));
        assert_eq!(d.estimate(0, 4, &[2]).unwrap(), None);
    }

    #[test]
    fn ratio_accessor() {
        let e = DistanceEstimate {
            estimate: Some(6),
            exact: Some(3),
        };
        assert_eq!(e.ratio(), Some(2.0));
        let d = DistanceEstimate {
            estimate: None,
            exact: None,
        };
        assert_eq!(d.ratio(), None);
    }

    #[test]
    fn weighted_estimates_are_upper_bounds() {
        use ftc_graph::EdgeWeights;
        let g = Graph::torus(3, 4);
        let w = EdgeWeights::random(&g, 1, 20, 9);
        let d = DistanceLabeling::new(&g, 2).unwrap();
        for faults in [vec![], vec![2], vec![0, 9]] {
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let e = d.estimate_weighted_with_truth(&w, s, t, &faults).unwrap();
                    match (e.estimate, e.exact) {
                        (Some(est), Some(ex)) => assert!(est >= ex),
                        (None, None) => {}
                        other => panic!("disagreement {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn weighted_uniform_matches_unweighted() {
        use ftc_graph::EdgeWeights;
        let g = Graph::cycle(7);
        let w = EdgeWeights::uniform(&g);
        let d = DistanceLabeling::new(&g, 1).unwrap();
        for s in 0..7 {
            for t in 0..7 {
                let a = d.estimate(s, t, &[3]).unwrap();
                let b = d.estimate_weighted(&w, s, t, &[3]).unwrap();
                assert_eq!(a.map(|x| x as u64), b);
            }
        }
    }

    #[test]
    fn ratios_stay_moderate_on_redundant_topologies() {
        let g = Graph::hypercube(4);
        let d = DistanceLabeling::new(&g, 2).unwrap();
        let mut worst: f64 = 1.0;
        for faults in [vec![0usize, 9], vec![3, 17]] {
            for s in 0..g.n() {
                for t in (s + 1)..g.n() {
                    if let Some(r) = d.estimate_with_truth(s, t, &faults).unwrap().ratio() {
                        worst = worst.max(r);
                    }
                }
            }
        }
        assert!(worst >= 1.0);
        assert!(worst <= 16.0, "ratio {worst} out of the expected envelope");
    }
}

//! Applications of the f-FTC labeling scheme (paper Corollaries 1–2).
//!
//! The paper obtains, as black-box reductions from any f-FTC labeling:
//!
//! * **Corollary 1** — a fault-tolerant *approximate distance* labeling;
//! * **Corollary 2** — deterministic *forbidden-set compact routing*:
//!   route packets from `s` to `t` avoiding a fault set `F` known at the
//!   source, with bounded table sizes and stretch.
//!
//! Since the paper defers the reduction details entirely to Dory–Parter
//! ("this paper does not present the precise formalism on these
//! corollaries"), this crate instantiates both applications with the
//! connectivity *certificate* our decoder produces (the fragment-merge
//! sequence of Section 7.6): the certificate is expanded into an actual
//! fault-avoiding path whose intra-fragment segments follow the spanning
//! tree — tree paths between vertices of one fragment never touch `F`.
//! The Thorup–Zwick tree-cover machinery of the original reduction is
//! *substituted* by BFS-tree paths (recorded in DESIGN.md §6); the
//! experiments measure the resulting empirical stretch and table sizes,
//! which is the shape Corollaries 1–2 predict.
//!
//! # Example
//!
//! ```
//! use ftc_routing::ForbiddenSetRouter;
//! use ftc_graph::Graph;
//!
//! let g = Graph::torus(4, 4);
//! let router = ForbiddenSetRouter::new(&g, 2).unwrap();
//! let faults = [g.find_edge(0, 1).unwrap()];
//! let path = router.route(0, 5, &faults).unwrap().expect("still connected");
//! assert_eq!(path.first(), Some(&0));
//! assert_eq!(path.last(), Some(&5));
//! ```

pub mod distance;
pub mod router;

pub use distance::{DistanceEstimate, DistanceLabeling};
pub use router::{ForbiddenSetRouter, RestoreError, RouteError, TableReport};

//! Forbidden-set routing (Corollary 2, instantiated via connectivity
//! certificates).
//!
//! The router preprocesses the graph into the f-FTC labeling plus
//! tree-routing tables. A route request `(s, t, F)` runs the labeling
//! decoder to obtain a *certificate* — the sequence of auxiliary non-tree
//! edges that merged the fragments of `T′ − σ(F)` until `s` and `t` met —
//! and expands it into an explicit fault-avoiding path: tree paths inside
//! fragments (which cannot touch `F`), certificate edges between them,
//! subdivision vertices contracted back to original edges.

use ftc_core::auxgraph::AuxGraph;
use ftc_core::store::LabelStoreView;
use ftc_core::{BuildError, FtcScheme, LabelSet, Params, QueryError, RsVector, SizeReport};
use ftc_graph::{EdgeId, Graph, RootedTree, VertexId};
use ftc_serve::{ConnectivityService, ServeError};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Routing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouteError {
    /// A vertex argument is out of range.
    BadVertex(VertexId),
    /// A fault-edge argument is out of range.
    BadEdge(EdgeId),
    /// The underlying labeling query failed.
    Query(QueryError),
    /// The served label archive failed lazy validation mid-route.
    Corrupt(ftc_core::SerialError),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::BadVertex(v) => write!(f, "vertex {v} out of range"),
            RouteError::BadEdge(e) => write!(f, "edge {e} out of range"),
            RouteError::Query(q) => write!(f, "labeling query failed: {q}"),
            RouteError::Corrupt(e) => write!(f, "served archive corrupt: {e}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<QueryError> for RouteError {
    fn from(q: QueryError) -> RouteError {
        RouteError::Query(q)
    }
}

/// Why a stored label archive could not be attached to a graph
/// ([`ForbiddenSetRouter::from_store`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The archive labels a different number of vertices or edges than
    /// the supplied graph has.
    ShapeMismatch {
        /// Vertices/edges of the supplied graph.
        graph: (usize, usize),
        /// Vertices/edges of the archived labeling.
        archive: (usize, usize),
    },
    /// The archived labels do not match the spanning structure derived
    /// from the supplied graph — the archive was built over a different
    /// graph (or a different edge order).
    LabelingMismatch,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::ShapeMismatch { graph, archive } => write!(
                f,
                "graph has {}/{} vertices/edges but the archive labels {}/{}",
                graph.0, graph.1, archive.0, archive.1
            ),
            RestoreError::LabelingMismatch => {
                write!(f, "archived labels do not belong to this graph")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// Table-size accounting (Corollary 2's measured counterpart).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableReport {
    /// Total bits across all per-node tables.
    pub total_bits: usize,
    /// Maximum bits of any single node's table.
    pub max_local_bits: usize,
    /// Number of nodes.
    pub n: usize,
}

/// A forbidden-set router over a fixed graph.
///
/// The labeling lives inside a shared [`ConnectivityService`], so the
/// router is `Send + Sync`: clone-free concurrent routing works by
/// sharing `&ForbiddenSetRouter` across threads — every
/// [`ForbiddenSetRouter::route`] call draws its session scratch from the
/// service's lock-free pool.
#[derive(Debug)]
pub struct ForbiddenSetRouter {
    g: Graph,
    aux: AuxGraph,
    /// Label-backed connectivity service (always `Backing::Owned`, so
    /// [`ForbiddenSetRouter::labels`] can hand out the label set).
    service: ConnectivityService,
    size: SizeReport,
    /// pre-order (in `T′`) → auxiliary vertex.
    pre_to_aux: Vec<VertexId>,
}

impl ForbiddenSetRouter {
    /// Preprocesses `g` for up to `f` simultaneous link failures, using the
    /// deterministic labeling.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the labeling construction.
    pub fn new(g: &Graph, f: usize) -> Result<ForbiddenSetRouter, BuildError> {
        Self::with_params(g, &Params::deterministic(f))
    }

    /// Preprocesses with explicit scheme parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the labeling construction.
    pub fn with_params(g: &Graph, params: &Params) -> Result<ForbiddenSetRouter, BuildError> {
        let tree = RootedTree::bfs(g, 0);
        let scheme = FtcScheme::builder(g).params(params).tree(&tree).build()?;
        let size = scheme.size_report();
        Ok(Self::assemble(g, &tree, scheme.into_labels(), size))
    }

    /// Reconstitutes a router from a stored label archive, skipping the
    /// scheme construction entirely: the hierarchy and outdetect labels
    /// are decoded from the archive, and only the (cheap, deterministic)
    /// spanning-forest/auxiliary-graph structure is rebuilt from `g`.
    ///
    /// # Errors
    ///
    /// [`RestoreError`] if the archive does not label `g` (wrong shape,
    /// or labels disagreeing with `g`'s spanning structure).
    pub fn from_store(
        g: &Graph,
        store: &LabelStoreView<'_>,
    ) -> Result<ForbiddenSetRouter, RestoreError> {
        if store.n() != g.n() || store.m() != g.m() {
            return Err(RestoreError::ShapeMismatch {
                graph: (g.n(), g.m()),
                archive: (store.n(), store.m()),
            });
        }
        let tree = RootedTree::bfs(g, 0);
        let aux = AuxGraph::build(g, &tree);
        if store.header().aux_n as usize != aux.aux_n {
            return Err(RestoreError::LabelingMismatch);
        }
        let labels = store.to_label_set();
        // The archive must carry this graph's labels, not merely one of
        // the same shape: every vertex's ancestry label must match the
        // structure derived from `g`.
        if (0..g.n()).any(|v| labels.vertex_label(v).anc != aux.anc[v]) {
            return Err(RestoreError::LabelingMismatch);
        }
        // And the archive's edge-ID assignment must match `g`'s edge
        // list, or fault IDs would resolve to the wrong labels: the
        // endpoint index must equal the one this graph would produce
        // (same last-writer-wins collapse of parallel edges as the
        // scheme builder).
        let mut expected = HashMap::with_capacity(g.m());
        for (e, u, v) in g.edge_iter() {
            expected.insert((u.min(v), u.max(v)), e);
        }
        if store.endpoint_index().len() != expected.len()
            || store
                .endpoint_index()
                .any(|(u, v, e)| expected.get(&(u, v)) != Some(&e))
        {
            return Err(RestoreError::LabelingMismatch);
        }
        let (k, levels) = labels
            .edge_labels()
            .next()
            .map_or((0, 0), |e| (e.vec.k(), e.vec.levels()));
        let size = labels.size_report(k, levels);
        let mut pre_to_aux = vec![usize::MAX; aux.aux_n];
        for v in 0..aux.aux_n {
            pre_to_aux[aux.anc[v].pre as usize] = v;
        }
        Ok(ForbiddenSetRouter {
            g: g.clone(),
            aux,
            service: ConnectivityService::from_labels(labels),
            size,
            pre_to_aux,
        })
    }

    fn assemble(
        g: &Graph,
        tree: &RootedTree,
        labels: LabelSet<RsVector>,
        size: SizeReport,
    ) -> ForbiddenSetRouter {
        let aux = AuxGraph::build(g, tree);
        let mut pre_to_aux = vec![usize::MAX; aux.aux_n];
        for v in 0..aux.aux_n {
            pre_to_aux[aux.anc[v].pre as usize] = v;
        }
        ForbiddenSetRouter {
            g: g.clone(),
            aux,
            service: ConnectivityService::from_labels(labels),
            size,
            pre_to_aux,
        }
    }

    /// The labeling this router queries (the artifact worth archiving
    /// via [`ftc_core::store::LabelStore`]).
    pub fn labels(&self) -> &LabelSet<RsVector> {
        self.service
            .labels()
            .expect("router services are label-backed")
    }

    /// The shared [`ConnectivityService`] this router queries through —
    /// clone it to serve plain connectivity queries next to routing.
    pub fn service(&self) -> &ConnectivityService {
        &self.service
    }

    /// Label-size accounting of the underlying labeling.
    pub fn size_report(&self) -> SizeReport {
        self.size
    }

    /// Computes a path from `s` to `t` in `G − F`, or `None` when
    /// disconnected. The returned path is simple-ified only to the extent
    /// the certificate allows — stretch is measured, not optimized.
    ///
    /// The per-fault-set session is built out of (and recycled back
    /// into) the service's lock-free scratch pool, so a router serving a
    /// stream of requests — from any number of threads — pays no
    /// session-construction allocations once the pool is warm. Path
    /// expansion still allocates the returned path.
    ///
    /// # Errors
    ///
    /// [`RouteError::BadVertex`]/[`RouteError::BadEdge`] on malformed
    /// arguments; [`RouteError::Query`] if the labeling decode fails.
    pub fn route(
        &self,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<Option<Vec<VertexId>>, RouteError> {
        if s >= self.g.n() {
            return Err(RouteError::BadVertex(s));
        }
        if t >= self.g.n() {
            return Err(RouteError::BadVertex(t));
        }
        if let Some(&e) = faults.iter().find(|&&e| e >= self.g.m()) {
            return Err(RouteError::BadEdge(e));
        }
        let l = self.labels();
        // Trivial queries answer before the session's budget enforcement,
        // matching the original decoder's check order.
        match ftc_core::QuerySession::trivial_answer(l.vertex_label(s), l.vertex_label(t))? {
            Some(false) => return Ok(None),
            Some(true) => return Ok(Some(vec![s])),
            None => {}
        }
        // One session per fault set: dedup/validation/fragment-splitting
        // and the merge engine run once, and the session's fragment
        // decomposition is reused below for path expansion. The session's
        // storage comes from — and returns to — the service's pool.
        self.service
            .with_session_ids(faults, |served| {
                self.expand_route(served.session(), s, t, faults)
            })
            .map_err(|e| match e {
                ServeError::Query(q) => RouteError::Query(q),
                ServeError::UnknownEdgeId { id } => RouteError::BadEdge(id),
                ServeError::VertexOutOfRange { v } => RouteError::BadVertex(v),
                ServeError::Corrupt(e) => RouteError::Corrupt(e),
                // Endpoint-pair faults are never used on this path.
                ServeError::UnknownEdge { .. } => {
                    unreachable!("routing names faults by edge ID")
                }
            })?
    }

    /// Expands a prepared session's certificate into an explicit
    /// fault-avoiding path (the second half of [`ForbiddenSetRouter::route`]).
    fn expand_route(
        &self,
        session: &ftc_core::QuerySession,
        s: VertexId,
        t: VertexId,
        faults: &[EdgeId],
    ) -> Result<Option<Vec<VertexId>>, RouteError> {
        let l = self.labels();
        let Some(cert) = session.certified(l.vertex_label(s), l.vertex_label(t))? else {
            return Ok(None);
        };

        // Fragment multigraph from the certificate edges.
        let frags = session.fragments();
        let frag_of = |aux_v: VertexId| frags.locate(&self.aux.anc[aux_v]);
        let fs = frag_of(s);
        let ft = frag_of(t);
        if fs == ft {
            let aux_path = self
                .aux
                .tree
                .tree_path(s, t)
                .expect("same fragment implies same component");
            return Ok(Some(self.contract(&aux_path, faults)));
        }

        // BFS over fragments along certificate edges.
        #[derive(Clone)]
        struct Hop {
            from_frag: usize,
            exit_vertex: VertexId,
            entry_vertex: VertexId,
        }
        // Index fragments densely.
        let mut frag_ids = vec![fs, ft];
        let index_of = |fid, ids: &mut Vec<_>| -> usize {
            if let Some(i) = ids.iter().position(|&x| x == fid) {
                i
            } else {
                ids.push(fid);
                ids.len() - 1
            }
        };
        let mut adj: Vec<Vec<(usize, VertexId, VertexId)>> = vec![Vec::new(); 2];
        for &(pa, pb) in cert {
            let a = self.pre_to_aux[pa as usize];
            let b = self.pre_to_aux[pb as usize];
            let fa = index_of(frag_of(a), &mut frag_ids);
            let fb = index_of(frag_of(b), &mut frag_ids);
            if adj.len() < frag_ids.len() {
                adj.resize(frag_ids.len(), Vec::new());
            }
            adj[fa].push((fb, a, b));
            adj[fb].push((fa, b, a));
        }
        let mut hop_to: Vec<Option<Hop>> = vec![None; frag_ids.len()];
        let mut visited = vec![false; frag_ids.len()];
        visited[0] = true; // fs
        let mut queue = VecDeque::from([0usize]);
        while let Some(cur) = queue.pop_front() {
            if cur == 1 {
                break; // reached ft
            }
            for &(next, exit_v, entry_v) in &adj[cur] {
                if !visited[next] {
                    visited[next] = true;
                    hop_to[next] = Some(Hop {
                        from_frag: cur,
                        exit_vertex: exit_v,
                        entry_vertex: entry_v,
                    });
                    queue.push_back(next);
                }
            }
        }
        assert!(
            visited[1],
            "certificate must connect the fragments of s and t"
        );

        // Reconstruct hops ft <- ... <- fs, then expand forwards.
        let mut hops: Vec<Hop> = Vec::new();
        let mut cur = 1usize;
        while cur != 0 {
            let h = hop_to[cur].clone().expect("visited fragments have hops");
            cur = h.from_frag;
            hops.push(h);
        }
        hops.reverse();

        let mut aux_path: Vec<VertexId> = vec![s];
        let mut cur_vertex = s;
        for h in &hops {
            let seg = self
                .aux
                .tree
                .tree_path(cur_vertex, h.exit_vertex)
                .expect("same fragment implies same component");
            aux_path.extend_from_slice(&seg[1..]);
            aux_path.push(h.entry_vertex);
            cur_vertex = h.entry_vertex;
        }
        let seg = self
            .aux
            .tree
            .tree_path(cur_vertex, t)
            .expect("t's fragment reached");
        aux_path.extend_from_slice(&seg[1..]);

        Ok(Some(self.contract(&aux_path, faults)))
    }

    /// Contracts subdivision vertices out of an auxiliary-graph path and
    /// validates every step against the graph and the fault set.
    fn contract(&self, aux_path: &[VertexId], faults: &[EdgeId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = Vec::with_capacity(aux_path.len());
        for &v in aux_path {
            if v < self.aux.orig_n && out.last() != Some(&v) {
                out.push(v);
            }
            // Subdividers vanish; their neighbors are the original
            // endpoints of the subdivided edge.
        }
        // Validation: every consecutive pair is a non-faulty edge.
        for w in out.windows(2) {
            let e = self
                .g
                .find_edge(w[0], w[1])
                .unwrap_or_else(|| panic!("path step {}–{} is not an edge", w[0], w[1]));
            assert!(
                !faults.contains(&e)
                    || self.g.edge_iter().any(|(e2, u, v)| {
                        e2 != e
                            && !faults.contains(&e2)
                            && ((u, v) == (w[0], w[1]) || (v, u) == (w[0], w[1]))
                    }),
                "path uses faulty edge {e}"
            );
        }
        out
    }

    /// Per-node table accounting: each node stores its own vertex label,
    /// the labels of its incident edges (to report/forward failures), and
    /// one ancestry interval per port (tree next-hop routing).
    pub fn table_report(&self) -> TableReport {
        let l = self.labels();
        let mut total = 0usize;
        let mut max_local = 0usize;
        for v in 0..self.g.n() {
            let mut bits = l.vertex_label(v).bits();
            for &e in self.g.incident_edges(v) {
                bits += l.edge_label_by_id(e).bits();
                bits += 2 * 32; // port interval for tree routing
            }
            total += bits;
            max_local = max_local.max(bits);
        }
        TableReport {
            total_bits: total,
            max_local_bits: max_local,
            n: self.g.n(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_graph::connectivity::{connected_avoiding, distance_avoiding};

    fn check_all_routes(g: &Graph, f: usize, fault_sets: &[Vec<EdgeId>]) {
        let router = ForbiddenSetRouter::new(g, f).unwrap();
        for faults in fault_sets {
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let got = router.route(s, t, faults).unwrap();
                    let want = connected_avoiding(g, s, t, faults);
                    match got {
                        None => assert!(!want, "router said disconnected for ({s},{t},{faults:?})"),
                        Some(path) => {
                            assert!(want);
                            assert_eq!(path.first(), Some(&s));
                            assert_eq!(path.last(), Some(&t));
                            // Path validity (edges exist, avoid F) is
                            // asserted inside contract(); also check
                            // it is not absurdly long.
                            assert!(path.len() <= g.n() * (faults.len() + 2));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cycle_routes_around_failures() {
        let g = Graph::cycle(8);
        let sets: Vec<Vec<EdgeId>> = (0..8).map(|e| vec![e]).collect();
        check_all_routes(&g, 2, &sets);
        check_all_routes(&g, 2, &[vec![0, 4], vec![1, 5], vec![2, 3]]);
    }

    #[test]
    fn grid_routes_with_two_faults() {
        let g = Graph::grid(3, 4);
        let sets = vec![vec![0, 7], vec![2, 9], vec![1, 3], vec![]];
        check_all_routes(&g, 2, &sets);
    }

    #[test]
    fn barbell_disconnection_detected() {
        let g = Graph::barbell(3);
        let bridge = g.find_edge(2, 3).unwrap();
        let router = ForbiddenSetRouter::new(&g, 1).unwrap();
        assert_eq!(router.route(0, 5, &[bridge]).unwrap(), None);
        assert!(router.route(0, 2, &[bridge]).unwrap().is_some());
    }

    #[test]
    fn stretch_is_measurable_and_finite() {
        let g = Graph::torus(4, 4);
        let router = ForbiddenSetRouter::new(&g, 2).unwrap();
        let faults = vec![0usize, 5];
        let mut worst = 0.0f64;
        for s in 0..g.n() {
            for t in 0..g.n() {
                if s == t {
                    continue;
                }
                if let Some(path) = router.route(s, t, &faults).unwrap() {
                    let opt = distance_avoiding(&g, s, t, &faults).unwrap();
                    let stretch = (path.len() - 1) as f64 / opt as f64;
                    worst = worst.max(stretch);
                }
            }
        }
        assert!(worst >= 1.0);
        assert!(worst < 20.0, "stretch {worst} looks unbounded");
    }

    #[test]
    fn trivial_routes_answer_before_budget_enforcement() {
        // Two triangles, f = 1: two distinct faults exceed the budget, but
        // self-routes and cross-component routes answer without touching it
        // (the pre-session decoder's check order).
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let router = ForbiddenSetRouter::new(&g, 1).unwrap();
        assert_eq!(router.route(2, 2, &[0, 1]).unwrap(), Some(vec![2]));
        assert_eq!(router.route(0, 4, &[0, 1]).unwrap(), None);
        // Non-trivial routes still report the budget violation.
        match router.route(0, 2, &[0, 1]) {
            Err(RouteError::Query(QueryError::TooManyFaults {
                supplied: 2,
                budget: 1,
            })) => {}
            other => panic!("expected budget violation, got {other:?}"),
        }
    }

    #[test]
    fn reconstituted_router_routes_identically() {
        use ftc_core::store::{EdgeEncoding, LabelStore, LabelStoreView};
        let g = Graph::torus(4, 4);
        let built = ForbiddenSetRouter::new(&g, 2).unwrap();
        let blob = LabelStore::to_vec(built.labels(), EdgeEncoding::Compact);
        let view = LabelStoreView::open(&blob).unwrap();
        let restored = ForbiddenSetRouter::from_store(&g, &view).unwrap();
        assert_eq!(restored.size_report(), built.size_report());
        for faults in [vec![], vec![0usize, 5], vec![3, 9]] {
            for s in 0..g.n() {
                for t in 0..g.n() {
                    assert_eq!(
                        restored.route(s, t, &faults).unwrap(),
                        built.route(s, t, &faults).unwrap(),
                        "({s},{t},{faults:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn reconstitution_rejects_foreign_archives() {
        use ftc_core::store::{EdgeEncoding, LabelStore, LabelStoreView};
        let g = Graph::torus(4, 4);
        let router = ForbiddenSetRouter::new(&g, 2).unwrap();
        let blob = LabelStore::to_vec(router.labels(), EdgeEncoding::Full);
        let view = LabelStoreView::open(&blob).unwrap();
        // Wrong shape.
        let other = Graph::cycle(5);
        assert!(matches!(
            ForbiddenSetRouter::from_store(&other, &view),
            Err(RestoreError::ShapeMismatch { .. })
        ));
        // Same vertex/edge counts, different graph: the ancestry check
        // rejects the foreign labels.
        let same_shape = ftc_graph::generators::random_connected(g.n(), g.m() - (g.n() - 1), 3);
        assert_eq!(same_shape.m(), g.m());
        assert!(matches!(
            ForbiddenSetRouter::from_store(&same_shape, &view),
            Err(RestoreError::LabelingMismatch)
        ));
    }

    #[test]
    fn reconstitution_rejects_permuted_edge_ids() {
        use ftc_core::store::{EdgeEncoding, LabelStore, LabelStoreView};
        // Identical edge *set* but a different edge-ID assignment: fault
        // IDs would resolve to the wrong archived labels, so the
        // endpoint-index check must reject the archive.
        let g = ftc_graph::generators::random_connected(10, 6, 0);
        let router = ForbiddenSetRouter::new(&g, 1).unwrap();
        let blob = LabelStore::to_vec(router.labels(), EdgeEncoding::Full);
        let view = LabelStoreView::open(&blob).unwrap();
        let mut edges: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
        edges.swap(0, 1);
        let permuted = Graph::from_edges(g.n(), &edges);
        assert!(matches!(
            ForbiddenSetRouter::from_store(&permuted, &view),
            Err(RestoreError::LabelingMismatch)
        ));
        // The honest graph still reconstitutes.
        assert!(ForbiddenSetRouter::from_store(&g, &view).is_ok());
    }

    #[test]
    fn concurrent_routes_match_sequential_routes() {
        // The router is Send + Sync: threads share it by reference, each
        // drawing scratch from the service's pool, and every concurrent
        // answer must equal the sequential one.
        let g = Graph::torus(4, 4);
        let router = ForbiddenSetRouter::new(&g, 2).unwrap();
        let fault_sets = [vec![], vec![0usize, 5], vec![3, 9], vec![1]];
        let sequential: Vec<_> = fault_sets
            .iter()
            .map(|faults| {
                (0..g.n())
                    .flat_map(|s| (0..g.n()).map(move |t| (s, t)))
                    .map(|(s, t)| router.route(s, t, faults).unwrap())
                    .collect::<Vec<_>>()
            })
            .collect();
        std::thread::scope(|scope| {
            for (faults, want) in fault_sets.iter().zip(&sequential) {
                let (router, g) = (&router, &g);
                scope.spawn(move || {
                    let got: Vec<_> = (0..g.n())
                        .flat_map(|s| (0..g.n()).map(move |t| (s, t)))
                        .map(|(s, t)| router.route(s, t, faults).unwrap())
                        .collect();
                    assert_eq!(&got, want, "{faults:?}");
                });
            }
        });
        // The embedded service doubles as a plain connectivity handle.
        assert!(router
            .service()
            .query(&[], &[(0, 10)])
            .unwrap()
            .all_connected());
    }

    #[test]
    fn bad_arguments_rejected() {
        let g = Graph::cycle(4);
        let router = ForbiddenSetRouter::new(&g, 1).unwrap();
        assert_eq!(router.route(9, 0, &[]), Err(RouteError::BadVertex(9)));
        assert_eq!(router.route(0, 9, &[]), Err(RouteError::BadVertex(9)));
        assert_eq!(router.route(0, 1, &[99]), Err(RouteError::BadEdge(99)));
    }

    #[test]
    fn table_report_shapes() {
        let g = Graph::grid(3, 3);
        let router = ForbiddenSetRouter::new(&g, 1).unwrap();
        let rep = router.table_report();
        assert_eq!(rep.n, 9);
        assert!(rep.max_local_bits > 0);
        assert!(rep.total_bits >= rep.max_local_bits * 2);
    }
}

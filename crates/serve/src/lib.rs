//! # ftc-serve — the concurrent serving layer
//!
//! The paper's labeling scheme is a *serving* artifact: labels are built
//! once and then answer arbitrary fault-set connectivity queries forever
//! after. `ftc-core` provides the fast single-threaded machinery
//! ([`ftc_core::QuerySession`], [`ftc_core::store::LabelStoreView`],
//! [`ftc_core::SessionScratch`]); this crate packages it for a process
//! that serves **many threads and many graphs through a single handle**:
//!
//! * [`ConnectivityService`] — `Send + Sync + Clone`; built from an owned
//!   label set, a label store, an opened view, or raw archive bytes
//!   (held as `Arc<[u8]>`, so every internal view is `'static`).
//!   [`ConnectivityService::query`] answers a batch of pairs under a
//!   fault set, internally checking a [`ftc_core::SessionScratch`] out
//!   of a lock-free pool so concurrent callers keep the zero-allocation
//!   warm session-build path without managing scratches themselves;
//! * [`ServiceRegistry`] — string graph IDs to services
//!   (insert / open-from-path / evict), the multi-tenant surface of one
//!   serving process.
//!
//! ```
//! use ftc_core::{FtcScheme, Params};
//! use ftc_graph::Graph;
//! use ftc_serve::{ConnectivityService, ServiceRegistry};
//!
//! let g = Graph::torus(4, 4);
//! let scheme = FtcScheme::build(&g, &Params::deterministic(3)).unwrap();
//! let registry = ServiceRegistry::new();
//! registry.insert("fabric", ConnectivityService::from_labels(scheme.into_labels()));
//!
//! // Any number of threads, one shared handle per graph.
//! let service = registry.get("fabric").unwrap();
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let service = service.clone();
//!         s.spawn(move || {
//!             let answers = service.query(&[(0, 1), (0, 4)], &[(0, 10)]).unwrap();
//!             assert!(answers.all_connected());
//!         });
//!     }
//! });
//! ```

mod pool;
pub mod registry;
pub mod service;

pub use registry::{RegistryError, ServiceRegistry};
pub use service::{Answers, ConnectivityService, ServeError, Served, VertexRef};

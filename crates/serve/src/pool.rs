//! A lock-free pool of [`SessionScratch`] buffers.
//!
//! The serving hot path (PR 3) threads a `SessionScratch` through every
//! session build so warm builds allocate nothing; a *concurrent* server
//! needs one scratch per in-flight request without handing the burden to
//! callers. [`ScratchPool`] is a fixed array of atomic slots: checkout
//! `swap`s a scratch out, return `compare_exchange`s it back in. No slot
//! is ever traversed through another slot's pointer, so the classic
//! Treiber-stack ABA/reclamation hazards cannot arise — each slot is an
//! independent single-pointer exchange. When every slot is empty a fresh
//! scratch is allocated (cold path); when every slot is full on return
//! the scratch is dropped. Both paths are correct, merely slower, so the
//! pool never blocks.

use ftc_core::{RsVector, SessionScratch};
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// A fixed-capacity, lock-free pool of warm [`SessionScratch`] buffers.
#[derive(Debug)]
pub(crate) struct ScratchPool {
    slots: Box<[AtomicPtr<SessionScratch<RsVector>>]>,
}

// Thread-safety note: `AtomicPtr` is `Send + Sync`, so the pool derives
// both automatically — no manual `unsafe impl` that would survive a
// non-thread-safe field being added later. Soundness of the *pointer
// contents* rests on the swap/CAS ownership discipline below: every
// non-null pointer came from `Box::into_raw` and is owned by exactly
// one place at any time — the slot, or the thread that swapped it out.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScratchPool>();
};

impl ScratchPool {
    /// A pool with `slots` parking places (all initially empty; scratches
    /// are created lazily on first checkout and warmed by use).
    pub(crate) fn new(slots: usize) -> ScratchPool {
        let slots = (0..slots.max(1))
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ScratchPool { slots }
    }

    /// Takes a warm scratch out of the pool, or allocates a cold one when
    /// every slot is empty.
    pub(crate) fn checkout(&self) -> Box<SessionScratch<RsVector>> {
        for slot in self.slots.iter() {
            let p = slot.swap(ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: `p` was produced by `Box::into_raw` in
                // `put_back` and the swap above made this thread its
                // unique owner.
                return unsafe { Box::from_raw(p) };
            }
        }
        Box::new(SessionScratch::new())
    }

    /// Returns a scratch to the pool; drops it when every slot is
    /// already occupied.
    pub(crate) fn put_back(&self, scratch: Box<SessionScratch<RsVector>>) {
        let p = Box::into_raw(scratch);
        for slot in self.slots.iter() {
            if slot
                .compare_exchange(ptr::null_mut(), p, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
        // Pool full: surplus warmth is dropped, not leaked.
        // SAFETY: the CAS never succeeded, so this thread still owns `p`.
        drop(unsafe { Box::from_raw(p) });
    }
}

impl Drop for ScratchPool {
    fn drop(&mut self) {
        for slot in self.slots.iter() {
            let p = slot.swap(ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                // SAFETY: same ownership argument as `checkout`.
                drop(unsafe { Box::from_raw(p) });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_put_back_round_trips() {
        let pool = ScratchPool::new(2);
        let a = pool.checkout();
        let b = pool.checkout();
        pool.put_back(a);
        pool.put_back(b);
        // Both parked; a third return is dropped without incident.
        pool.put_back(Box::new(SessionScratch::new()));
        let _ = pool.checkout();
        let _ = pool.checkout();
        let _ = pool.checkout(); // cold allocation, pool empty
    }

    #[test]
    fn concurrent_checkout_is_race_free() {
        let pool = ScratchPool::new(4);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..200 {
                        let scratch = pool.checkout();
                        pool.put_back(scratch);
                    }
                });
            }
        });
    }

    #[test]
    fn drop_frees_parked_scratches() {
        let pool = ScratchPool::new(3);
        for _ in 0..3 {
            pool.put_back(Box::new(SessionScratch::new()));
        }
        drop(pool); // miri/asan would flag a leak or double free here
    }
}

//! A multi-graph registry: string IDs to [`ConnectivityService`]s.
//!
//! One serving process usually fronts more than one graph (tenants,
//! regions, topology snapshots). [`ServiceRegistry`] maps string IDs to
//! services behind one `RwLock`: lookups clone the service *handle*
//! (`Arc` bump — the labels themselves are never copied) and drop the
//! lock before any query runs, so a long-running query never blocks
//! registration, and eviction never invalidates in-flight queries —
//! holders of the evicted handle keep answering until they drop it.

use crate::service::ConnectivityService;
use ftc_core::SerialError;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Process-wide monotonic generation counter. Generations are unique
/// across all registries and all IDs, so a generation observed before a
/// swap can never compare equal to one observed after it.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

#[derive(Debug, Clone)]
struct Entry {
    service: ConnectivityService,
    generation: u64,
}

/// Errors raised while opening an archive into a registry.
#[derive(Debug)]
pub enum RegistryError {
    /// The archive file could not be read.
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error.
        err: std::io::Error,
    },
    /// The file's bytes are not a well-formed label archive.
    Archive(SerialError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, err } => write!(f, "cannot read archive {path}: {err}"),
            RegistryError::Archive(e) => write!(f, "malformed archive: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<SerialError> for RegistryError {
    fn from(e: SerialError) -> RegistryError {
        RegistryError::Archive(e)
    }
}

/// A thread-safe map from graph IDs to [`ConnectivityService`]s.
///
/// # Example
///
/// ```
/// use ftc_core::{FtcScheme, Params};
/// use ftc_graph::Graph;
/// use ftc_serve::{ConnectivityService, ServiceRegistry};
///
/// let registry = ServiceRegistry::new();
/// let scheme = FtcScheme::build(&Graph::cycle(6), &Params::deterministic(2)).unwrap();
/// registry.insert("prod/eu", ConnectivityService::from_labels(scheme.into_labels()));
///
/// let svc = registry.get("prod/eu").unwrap();
/// assert!(svc.query(&[(0, 1)], &[(0, 3)]).unwrap().all_connected());
/// assert!(registry.evict("prod/eu").is_some());
/// assert!(registry.get("prod/eu").is_none());
/// // The evicted handle keeps serving for whoever still holds it.
/// assert_eq!(svc.n(), 6);
/// ```
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: RwLock<HashMap<String, Entry>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, HashMap<String, Entry>> {
        // Queries never run under the lock, so a poisoned lock only means
        // a panic between guard acquisition and drop in this module —
        // the map itself is always in a consistent state.
        self.services.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, HashMap<String, Entry>> {
        self.services.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a service under `id`, returning the service previously
    /// registered there (whose existing handles keep working).
    pub fn insert(
        &self,
        id: impl Into<String>,
        service: ConnectivityService,
    ) -> Option<ConnectivityService> {
        let entry = Entry {
            service,
            generation: next_generation(),
        };
        self.write().insert(id.into(), entry).map(|e| e.service)
    }

    /// Atomically replaces (or first-registers) the service under `id`
    /// and returns the new entry's generation — the blue/green swap
    /// primitive. Lookups racing the swap observe either the old or the
    /// new service, never an absent entry, and handles cloned out before
    /// the swap keep serving until dropped, so a live graph is replaced
    /// with zero query downtime.
    pub fn swap(&self, id: impl Into<String>, service: ConnectivityService) -> u64 {
        let entry = Entry {
            service,
            generation: next_generation(),
        };
        let generation = entry.generation;
        self.write().insert(id.into(), entry);
        generation
    }

    /// The generation of the entry currently registered under `id`.
    /// Generations are process-wide monotonic: a successful [`swap`]
    /// strictly increases the value observed here.
    ///
    /// [`swap`]: ServiceRegistry::swap
    pub fn generation(&self, id: &str) -> Option<u64> {
        self.read().get(id).map(|e| e.generation)
    }

    /// Opens a label archive of either format from `path` — v1 blobs
    /// and v2 compressed containers alike, memory-mapped where the
    /// platform allows — builds the matching service backing, and
    /// registers it under `id` (replacing any previous registration).
    /// Returns a handle to the new service.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Io`] on read failures, [`RegistryError::Archive`]
    /// if the bytes fit neither archive format. The registry is
    /// unchanged on error.
    pub fn open_path(
        &self,
        id: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<ConnectivityService, RegistryError> {
        let path = path.as_ref();
        let service = ConnectivityService::open_path(path).map_err(|e| match e {
            ftc_core::StoreOpenError::Io(err) => RegistryError::Io {
                path: path.display().to_string(),
                err,
            },
            ftc_core::StoreOpenError::Malformed(e) => RegistryError::Archive(e),
        })?;
        self.insert(id, service.clone());
        Ok(service)
    }

    /// The service registered under `id`, as a cloned handle (an `Arc`
    /// bump; the lock is released before the handle is used).
    pub fn get(&self, id: &str) -> Option<ConnectivityService> {
        self.read().get(id).map(|e| e.service.clone())
    }

    /// Unregisters `id`, returning its service. In-flight queries on
    /// existing handles are unaffected.
    pub fn evict(&self, id: &str) -> Option<ConnectivityService> {
        self.write().remove(id).map(|e| e.service)
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: &str) -> bool {
        self.read().contains_key(id)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.read().is_empty()
    }

    /// The registered IDs, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.read().keys().cloned().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::store::{EdgeEncoding, LabelStore};
    use ftc_core::{FtcScheme, Params};
    use ftc_graph::Graph;

    fn service(n: usize) -> ConnectivityService {
        let scheme = FtcScheme::build(&Graph::cycle(n), &Params::deterministic(1)).unwrap();
        ConnectivityService::from_labels(scheme.into_labels())
    }

    #[test]
    fn insert_get_evict_round_trip() {
        let reg = ServiceRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.insert("a", service(5)).is_none());
        assert!(reg.insert("b", service(6)).is_none());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.ids(), vec!["a".to_string(), "b".to_string()]);
        assert!(reg.contains("a"));
        assert_eq!(reg.get("a").unwrap().n(), 5);
        assert!(reg.get("zzz").is_none());
        // Replacement returns the old service.
        let old = reg.insert("a", service(7)).unwrap();
        assert_eq!(old.n(), 5);
        assert_eq!(reg.get("a").unwrap().n(), 7);
        // Eviction removes the entry but not in-flight handles.
        let handle = reg.get("b").unwrap();
        assert!(reg.evict("b").is_some());
        assert!(reg.evict("b").is_none());
        assert!(handle.query(&[], &[(0, 3)]).unwrap().all_connected());
    }

    #[test]
    fn swap_is_atomic_and_generations_are_monotonic() {
        let reg = ServiceRegistry::new();
        assert!(reg.generation("g").is_none());

        let g1 = reg.swap("g", service(5));
        assert_eq!(reg.generation("g"), Some(g1));
        assert_eq!(reg.get("g").unwrap().n(), 5);

        // A handle taken before the swap keeps serving the old graph;
        // the registry serves the new one under a strictly newer
        // generation.
        let old = reg.get("g").unwrap();
        let g2 = reg.swap("g", service(9));
        assert!(g2 > g1);
        assert_eq!(reg.generation("g"), Some(g2));
        assert_eq!(old.n(), 5);
        assert_eq!(reg.get("g").unwrap().n(), 9);
        assert!(old.query(&[], &[(0, 3)]).unwrap().all_connected());

        // insert() also advances the generation.
        reg.insert("g", service(6));
        let g3 = reg.generation("g").unwrap();
        assert!(g3 > g2);

        // Generations are unique across IDs too.
        let other = reg.swap("h", service(4));
        assert!(other > g3);
    }

    #[test]
    fn open_path_builds_archive_backed_services() {
        let scheme = FtcScheme::build(&Graph::cycle(8), &Params::deterministic(2)).unwrap();
        let dir = std::env::temp_dir().join(format!("ftc_registry_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle8.ftc");
        std::fs::write(
            &path,
            LabelStore::to_vec(scheme.labels(), EdgeEncoding::Compact),
        )
        .unwrap();

        let reg = ServiceRegistry::new();
        let svc = reg.open_path("cycle8", &path).unwrap();
        assert_eq!(svc.encoding(), Some(EdgeEncoding::Compact));
        assert!(!svc.is_compressed());
        assert!(reg.contains("cycle8"));
        assert!(svc.query(&[(0, 1)], &[(0, 4)]).unwrap().all_connected());

        // A v2 compressed archive opens transparently into a
        // compressed-backed service.
        let v2_path = dir.join("cycle8.ftcz");
        let blob = std::fs::read(&path).unwrap();
        let v1 = ftc_core::store::LabelStoreView::open(&blob).unwrap();
        std::fs::write(
            &v2_path,
            ftc_core::compressed::compress_archive(&v1).as_bytes(),
        )
        .unwrap();
        let zsvc = reg.open_path("cycle8z", &v2_path).unwrap();
        assert!(zsvc.is_compressed());
        assert_eq!(
            zsvc.query(&[(0, 1)], &[(0, 4)]).unwrap(),
            svc.query(&[(0, 1)], &[(0, 4)]).unwrap()
        );

        // Errors leave the registry unchanged.
        assert!(matches!(
            reg.open_path("missing", dir.join("nope.ftc")),
            Err(RegistryError::Io { .. })
        ));
        assert!(!reg.contains("missing"));
        std::fs::write(dir.join("bad.ftc"), b"not an archive").unwrap();
        assert!(matches!(
            reg.open_path("bad", dir.join("bad.ftc")),
            Err(RegistryError::Archive(_))
        ));
        assert!(!reg.contains("bad"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The shareable connectivity service: one handle, many threads, any
//! number of fault-set queries.

use crate::pool::ScratchPool;
use ftc_core::compressed::{AnyArchive, CompressedStoreView};
use ftc_core::serial::VertexLabelView;
use ftc_core::store::{EdgeEncoding, LabelStore, LabelStoreView, StoreError, StoreOpenError};
use ftc_core::{
    Certificate, LabelHeader, LabelSet, QueryError, QuerySession, RsVector, SerialError,
    VertexLabel, VertexLabelRead,
};
use std::fmt;
use std::sync::Arc;

/// Errors raised while serving a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A fault was named by an endpoint pair the labeling does not
    /// contain.
    UnknownEdge {
        /// First requested endpoint.
        u: usize,
        /// Second requested endpoint.
        v: usize,
    },
    /// A fault was named by an edge ID outside the labeling's `0..m`.
    UnknownEdgeId {
        /// The requested edge ID.
        id: usize,
    },
    /// A vertex argument is outside the labeling's `0..n` range.
    VertexOutOfRange {
        /// The requested vertex.
        v: usize,
    },
    /// The underlying session construction or query failed.
    Query(QueryError),
    /// A lazily-validated archive section failed its checksum or decode
    /// on first touch (compressed backings only).
    Corrupt(SerialError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEdge { u, v } => {
                write!(f, "no edge {u}–{v} in the served labeling")
            }
            ServeError::UnknownEdgeId { id } => {
                write!(f, "no edge with ID {id} in the served labeling")
            }
            ServeError::VertexOutOfRange { v } => write!(f, "vertex {v} out of range"),
            ServeError::Query(q) => write!(f, "query failed: {q}"),
            ServeError::Corrupt(e) => write!(f, "served archive section corrupt: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QueryError> for ServeError {
    fn from(q: QueryError) -> ServeError {
        ServeError::Query(q)
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        match e {
            StoreError::UnknownEdge { u, v } => ServeError::UnknownEdge { u, v },
            StoreError::VertexOutOfRange { v } => ServeError::VertexOutOfRange { v },
            StoreError::Query(q) => ServeError::Query(q),
            StoreError::Corrupt(e) => ServeError::Corrupt(e),
        }
    }
}

/// A vertex label resolved out of a service — owned-label reference or
/// zero-copy archive view, behind one [`VertexLabelRead`] implementor.
#[derive(Clone, Copy, Debug)]
pub enum VertexRef<'a> {
    /// A reference into an owned [`LabelSet`].
    Owned(&'a VertexLabel),
    /// A zero-copy view into an archive blob.
    Archived(VertexLabelView<'a>),
}

impl VertexLabelRead for VertexRef<'_> {
    fn header(&self) -> LabelHeader {
        match self {
            VertexRef::Owned(l) => l.header,
            VertexRef::Archived(v) => v.header(),
        }
    }

    fn anc(&self) -> ftc_core::ancestry::AncestryLabel {
        match self {
            VertexRef::Owned(l) => l.anc,
            VertexRef::Archived(v) => v.anc(),
        }
    }
}

/// What a service holds: an owned label set, a `'static` shared view
/// over an uncompressed archive blob, or a lazily-decoded view over a
/// v2 compressed archive.
#[derive(Debug)]
enum Backing {
    Owned(LabelSet<RsVector>),
    Archive(LabelStoreView<'static>),
    Compressed(CompressedStoreView),
}

impl Backing {
    fn n(&self) -> usize {
        match self {
            Backing::Owned(l) => l.n(),
            Backing::Archive(v) => v.n(),
            Backing::Compressed(v) => v.n(),
        }
    }

    fn m(&self) -> usize {
        match self {
            Backing::Owned(l) => l.m(),
            Backing::Archive(v) => v.m(),
            Backing::Compressed(v) => v.m(),
        }
    }

    fn header(&self) -> LabelHeader {
        match self {
            Backing::Owned(l) => l.header(),
            Backing::Archive(v) => v.header(),
            Backing::Compressed(v) => v.header(),
        }
    }

    fn vertex(&self, v: usize) -> Result<Option<VertexRef<'_>>, ServeError> {
        match self {
            Backing::Owned(l) => {
                if v < l.n() {
                    Ok(Some(VertexRef::Owned(l.vertex_label(v))))
                } else {
                    Ok(None)
                }
            }
            Backing::Archive(view) => Ok(view.vertex(v).map(VertexRef::Archived)),
            Backing::Compressed(view) => Ok(view
                .vertex(v)
                .map_err(ServeError::Corrupt)?
                .map(VertexRef::Archived)),
        }
    }

    fn has_edge(&self, u: usize, v: usize) -> Result<bool, ServeError> {
        match self {
            Backing::Owned(l) => Ok(l.edge_label(u, v).is_some()),
            Backing::Archive(view) => Ok(view.edge_id(u, v).is_some()),
            Backing::Compressed(view) => {
                Ok(view.edge_id(u, v).map_err(ServeError::Corrupt)?.is_some())
            }
        }
    }

    fn build_session(
        &self,
        faults: &[(usize, usize)],
        scratch: &mut ftc_core::SessionScratch<RsVector>,
    ) -> Result<QuerySession, ServeError> {
        match self {
            Backing::Owned(l) => {
                // Existence was validated eagerly; the unwrap is the
                // pre-checked lookup repeated.
                let session = l.session_in(
                    faults
                        .iter()
                        .map(|&(u, v)| l.edge_label(u, v).expect("fault edges validated eagerly")),
                    scratch,
                )?;
                Ok(session)
            }
            Backing::Archive(view) => Ok(view.session_in(faults.iter().copied(), scratch)?),
            Backing::Compressed(view) => Ok(view.session_in(faults.iter().copied(), scratch)?),
        }
    }

    fn build_session_ids(
        &self,
        faults: &[usize],
        scratch: &mut ftc_core::SessionScratch<RsVector>,
    ) -> Result<QuerySession, ServeError> {
        match self {
            Backing::Owned(l) => {
                let session =
                    l.session_in(faults.iter().map(|&e| l.edge_label_by_id(e)), scratch)?;
                Ok(session)
            }
            Backing::Archive(view) => {
                let session = QuerySession::new_in(
                    view.header(),
                    faults
                        .iter()
                        .map(|&e| view.edge_by_id(e).expect("fault IDs validated eagerly")),
                    scratch,
                )?;
                Ok(session)
            }
            Backing::Compressed(view) => {
                Ok(view.session_in_by_ids(faults.iter().copied(), scratch)?)
            }
        }
    }
}

#[derive(Debug)]
struct Inner {
    backing: Backing,
    pool: ScratchPool,
}

/// The answers of one [`ConnectivityService::query`] call: one `bool`
/// per requested pair, in request order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Answers {
    answers: Vec<bool>,
}

impl Answers {
    /// The answers as a slice, in request order.
    pub fn as_slice(&self) -> &[bool] {
        &self.answers
    }

    /// The answer for pair `i` (request order).
    pub fn get(&self, i: usize) -> Option<bool> {
        self.answers.get(i).copied()
    }

    /// Number of answered pairs.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// `true` when no pairs were requested.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// `true` iff every requested pair is connected.
    pub fn all_connected(&self) -> bool {
        self.answers.iter().all(|&a| a)
    }

    /// Consumes the answers into the underlying vector.
    pub fn into_vec(self) -> Vec<bool> {
        self.answers
    }
}

impl<'a> IntoIterator for &'a Answers {
    type Item = bool;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, bool>>;

    fn into_iter(self) -> Self::IntoIter {
        self.answers.iter().copied()
    }
}

/// A prepared fault set inside [`ConnectivityService::with_session`] /
/// [`ConnectivityService::with_session_ids`]: the session plus vertex
/// resolution against the service's backing.
#[derive(Clone, Copy, Debug)]
pub struct Served<'a> {
    backing: &'a Backing,
    session: &'a QuerySession,
}

impl<'a> Served<'a> {
    /// The prepared [`QuerySession`] (for consumers — like the routing
    /// layer — that need certificates and the fragment decomposition).
    pub fn session(&self) -> &'a QuerySession {
        self.session
    }

    /// The label of vertex `v`, resolved from the service's backing;
    /// `Ok(None)` when `v` is out of range.
    ///
    /// # Errors
    ///
    /// [`ServeError::Corrupt`] if a compressed backing's vertex section
    /// fails lazy validation.
    pub fn vertex(&self, v: usize) -> Result<Option<VertexRef<'a>>, ServeError> {
        self.backing.vertex(v)
    }

    /// Answers one s–t query by vertex ID.
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] on bad IDs, [`ServeError::Query`]
    /// from the session.
    pub fn connected(&self, s: usize, t: usize) -> Result<bool, ServeError> {
        Ok(self.certified(s, t)?.is_some())
    }

    /// Like [`Served::connected`], but returns the borrowed merge
    /// certificate when connected.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Served::connected`].
    pub fn certified(&self, s: usize, t: usize) -> Result<Option<&'a [(u32, u32)]>, ServeError> {
        let vs = self
            .backing
            .vertex(s)?
            .ok_or(ServeError::VertexOutOfRange { v: s })?;
        let vt = self
            .backing
            .vertex(t)?
            .ok_or(ServeError::VertexOutOfRange { v: t })?;
        Ok(self.session.certified(vs, vt)?)
    }
}

/// A shareable, thread-safe connectivity serving handle.
///
/// Built once from an owned [`LabelSet`], an opened [`LabelStoreView`],
/// a [`LabelStore`], or raw archive bytes (held as `Arc<[u8]>`, so every
/// internal view is `'static`), the service is `Send + Sync + Clone`:
/// clone the handle into as many threads as needed, and every
/// [`ConnectivityService::query`] call internally checks a
/// [`ftc_core::SessionScratch`] out of a lock-free pool — concurrent
/// callers keep the zero-allocation warm session-build path without
/// managing scratches themselves.
///
/// # Example
///
/// ```
/// use ftc_core::store::{EdgeEncoding, LabelStore};
/// use ftc_core::{FtcScheme, Params};
/// use ftc_graph::Graph;
/// use ftc_serve::ConnectivityService;
///
/// let g = Graph::torus(4, 4);
/// let scheme = FtcScheme::build(&g, &Params::deterministic(3)).unwrap();
/// let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Compact);
///
/// let service = ConnectivityService::from_archive_bytes(blob).unwrap();
/// std::thread::scope(|s| {
///     for _ in 0..4 {
///         let service = service.clone();
///         s.spawn(move || {
///             let answers = service
///                 .query(&[(0, 1), (0, 4)], &[(0, 10), (3, 12)])
///                 .unwrap();
///             assert!(answers.all_connected());
///         });
///     }
/// });
/// ```
#[derive(Clone, Debug)]
pub struct ConnectivityService {
    inner: Arc<Inner>,
}

impl ConnectivityService {
    fn with_backing(backing: Backing) -> ConnectivityService {
        let slots = std::thread::available_parallelism()
            .map(|p| p.get() * 2)
            .unwrap_or(8)
            .clamp(4, 64);
        ConnectivityService {
            inner: Arc::new(Inner {
                backing,
                pool: ScratchPool::new(slots),
            }),
        }
    }

    /// A service over an owned label set.
    pub fn from_labels(labels: LabelSet<RsVector>) -> ConnectivityService {
        Self::with_backing(Backing::Owned(labels))
    }

    /// A service over raw archive bytes: the blob moves into an
    /// `Arc<[u8]>` and is validated once; every later lookup is
    /// zero-copy.
    ///
    /// # Errors
    ///
    /// [`SerialError`] if the bytes are not a well-formed archive.
    pub fn from_archive_bytes(
        bytes: impl Into<Arc<[u8]>>,
    ) -> Result<ConnectivityService, SerialError> {
        Ok(Self::with_backing(Backing::Archive(
            LabelStoreView::open_shared(bytes)?,
        )))
    }

    /// A service over an already-validated [`LabelStore`] (no
    /// re-validation; the blob is shared, not copied).
    pub fn from_store(store: LabelStore) -> ConnectivityService {
        Self::with_backing(Backing::Archive(store.into_shared_view()))
    }

    /// A service over an opened [`LabelStoreView`]: a shared view clones
    /// its `Arc` (O(1)); a borrowed view copies the blob once.
    pub fn from_view(view: &LabelStoreView<'_>) -> ConnectivityService {
        Self::with_backing(Backing::Archive(view.to_shared()))
    }

    /// A service over a v2 compressed archive view: sections decode
    /// lazily on first touch and stay cached for the service's lifetime.
    pub fn from_compressed(view: CompressedStoreView) -> ConnectivityService {
        Self::with_backing(Backing::Compressed(view))
    }

    /// Opens an archive file of either format (memory-mapped where the
    /// platform allows) and wraps it in a service: v1 archives get the
    /// fully validated zero-copy backing, v2 archives the lazily-decoded
    /// compressed backing.
    ///
    /// # Errors
    ///
    /// [`StoreOpenError`] on I/O failure or malformed archives.
    pub fn open_path(
        path: impl AsRef<std::path::Path>,
    ) -> Result<ConnectivityService, StoreOpenError> {
        Ok(match ftc_core::compressed::open_path(path)? {
            AnyArchive::V1(view) => Self::with_backing(Backing::Archive(view)),
            AnyArchive::V2(view) => Self::with_backing(Backing::Compressed(view)),
        })
    }

    /// Number of served vertex labels.
    pub fn n(&self) -> usize {
        self.inner.backing.n()
    }

    /// Number of served edge labels.
    pub fn m(&self) -> usize {
        self.inner.backing.m()
    }

    /// The shared labeling header (fault budget `f` in `header().f`).
    pub fn header(&self) -> LabelHeader {
        self.inner.backing.header()
    }

    /// The archive encoding, when the service is archive-backed.
    pub fn encoding(&self) -> Option<EdgeEncoding> {
        match &self.inner.backing {
            Backing::Owned(_) => None,
            Backing::Archive(v) => Some(v.encoding()),
            Backing::Compressed(v) => Some(v.encoding()),
        }
    }

    /// `true` when the service serves a v2 compressed archive.
    pub fn is_compressed(&self) -> bool {
        matches!(&self.inner.backing, Backing::Compressed(_))
    }

    /// The owned label set, when the service is label-backed.
    pub fn labels(&self) -> Option<&LabelSet<RsVector>> {
        match &self.inner.backing {
            Backing::Owned(l) => Some(l),
            Backing::Archive(_) | Backing::Compressed(_) => None,
        }
    }

    /// Answers a pair without preparing a fault set at all:
    /// `Some(connected)` for same-vertex or cross-component pairs,
    /// `None` when the full decoder is required. Trivially-decidable
    /// pairs answer before fault validation (the decoder's historical
    /// check order).
    ///
    /// # Errors
    ///
    /// [`ServeError::VertexOutOfRange`] on bad vertex IDs.
    pub fn trivial_answer(&self, s: usize, t: usize) -> Result<Option<bool>, ServeError> {
        let vs = self
            .inner
            .backing
            .vertex(s)?
            .ok_or(ServeError::VertexOutOfRange { v: s })?;
        let vt = self
            .inner
            .backing
            .vertex(t)?
            .ok_or(ServeError::VertexOutOfRange { v: t })?;
        Ok(QuerySession::trivial_answer(&vs, &vt)?)
    }

    /// Answers a batch of s–t `pairs` under the fault set named by
    /// endpoint-pair `faults`: one session build (scratch from the
    /// pool), any number of answers. Faults are validated eagerly —
    /// an unknown fault edge errors even when every pair would answer
    /// trivially — and trivially-decidable pairs answer before the
    /// fault-budget check, preserving the historical decoder order.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEdge`] / [`ServeError::VertexOutOfRange`] on
    /// unresolvable arguments, [`ServeError::Query`] from the decoder.
    pub fn query(
        &self,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Answers, ServeError> {
        let certs = self.answer(faults, pairs, |cert| cert.is_some())?;
        Ok(Answers { answers: certs })
    }

    /// Like [`ConnectivityService::query`], but returning the merge
    /// certificate per connected pair (`None` = disconnected, empty =
    /// trivially/same-fragment connected).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ConnectivityService::query`].
    pub fn query_certified(
        &self,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
    ) -> Result<Vec<Option<Certificate>>, ServeError> {
        self.answer(faults, pairs, |cert| cert.map(<[(u32, u32)]>::to_vec))
    }

    /// Shared implementation of the query entry points: eager fault
    /// validation, the trivial pass, then one pooled session build for
    /// the remaining pairs, mapped through `extract`.
    fn answer<R>(
        &self,
        faults: &[(usize, usize)],
        pairs: &[(usize, usize)],
        mut extract: impl FnMut(Option<&[(u32, u32)]>) -> R,
    ) -> Result<Vec<R>, ServeError> {
        let backing = &self.inner.backing;
        for &(u, v) in faults {
            if !backing.has_edge(u, v)? {
                return Err(ServeError::UnknownEdge { u, v });
            }
        }
        let resolve = |v: usize| backing.vertex(v)?.ok_or(ServeError::VertexOutOfRange { v });
        let mut out: Vec<Option<R>> = Vec::with_capacity(pairs.len());
        let mut nontrivial = Vec::new();
        for &(s, t) in pairs {
            let (vs, vt) = (resolve(s)?, resolve(t)?);
            match QuerySession::trivial_answer(&vs, &vt)? {
                Some(true) => out.push(Some(extract(Some(&[])))),
                Some(false) => out.push(Some(extract(None))),
                None => {
                    nontrivial.push((vs, vt));
                    out.push(None);
                }
            }
        }
        if !nontrivial.is_empty() {
            let mut scratch = self.inner.pool.checkout();
            let session = match backing.build_session(faults, &mut scratch) {
                Ok(session) => session,
                Err(e) => {
                    self.inner.pool.put_back(scratch);
                    return Err(e);
                }
            };
            let mut answered = nontrivial
                .iter()
                .map(|(vs, vt)| session.certified(vs, vt).map(&mut extract));
            let mut failed: Option<QueryError> = None;
            for slot in out.iter_mut().filter(|s| s.is_none()) {
                match answered.next().expect("one answer per nontrivial pair") {
                    Ok(r) => *slot = Some(r),
                    Err(e) => {
                        failed = Some(e);
                        break;
                    }
                }
            }
            drop(answered);
            scratch.recycle(session);
            self.inner.pool.put_back(scratch);
            if let Some(e) = failed {
                return Err(e.into());
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every pair answered"))
            .collect())
    }

    /// Prepares a session for endpoint-pair `faults` out of the pool and
    /// hands it to `f` as a [`Served`] — the lower-level entry point for
    /// consumers that need the session itself (certificates, fragment
    /// decomposition) while keeping pooled scratch reuse.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEdge`] on unresolvable faults,
    /// [`ServeError::Query`] on session-construction failures.
    pub fn with_session<R>(
        &self,
        faults: &[(usize, usize)],
        f: impl FnOnce(Served<'_>) -> R,
    ) -> Result<R, ServeError> {
        let backing = &self.inner.backing;
        for &(u, v) in faults {
            if !backing.has_edge(u, v)? {
                return Err(ServeError::UnknownEdge { u, v });
            }
        }
        self.run_session(|scratch| backing.build_session(faults, scratch), f)
    }

    /// Like [`ConnectivityService::with_session`], naming faults by
    /// original edge ID (the routing layer's native fault vocabulary —
    /// unlike endpoint pairs, IDs distinguish parallel edges).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownEdgeId`] on out-of-range IDs,
    /// [`ServeError::Query`] on session-construction failures.
    pub fn with_session_ids<R>(
        &self,
        faults: &[usize],
        f: impl FnOnce(Served<'_>) -> R,
    ) -> Result<R, ServeError> {
        let backing = &self.inner.backing;
        if let Some(&id) = faults.iter().find(|&&e| e >= backing.m()) {
            return Err(ServeError::UnknownEdgeId { id });
        }
        self.run_session(|scratch| backing.build_session_ids(faults, scratch), f)
    }

    fn run_session<R>(
        &self,
        build: impl FnOnce(&mut ftc_core::SessionScratch<RsVector>) -> Result<QuerySession, ServeError>,
        f: impl FnOnce(Served<'_>) -> R,
    ) -> Result<R, ServeError> {
        let mut scratch = self.inner.pool.checkout();
        let session = match build(&mut scratch) {
            Ok(session) => session,
            Err(e) => {
                self.inner.pool.put_back(scratch);
                return Err(e);
            }
        };
        let r = f(Served {
            backing: &self.inner.backing,
            session: &session,
        });
        scratch.recycle(session);
        self.inner.pool.put_back(scratch);
        Ok(r)
    }
}

// Compile-time guarantees, not vibes: the service contract is
// `Send + Sync + Clone`, and both backings must stay that way.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_clone<T: Clone>() {}
    assert_send_sync::<ConnectivityService>();
    assert_send_sync::<Backing>();
    assert_send_sync::<Answers>();
    assert_send_sync::<ServeError>();
    assert_clone::<ConnectivityService>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_core::{FtcScheme, Params};
    use ftc_graph::Graph;

    fn torus_service(encoding: Option<EdgeEncoding>) -> ConnectivityService {
        let g = Graph::torus(3, 4);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        match encoding {
            None => ConnectivityService::from_labels(scheme.into_labels()),
            Some(enc) => {
                let blob = LabelStore::to_vec(scheme.labels(), enc);
                ConnectivityService::from_archive_bytes(blob).unwrap()
            }
        }
    }

    fn torus_service_compressed(enc: EdgeEncoding) -> ConnectivityService {
        let g = Graph::torus(3, 4);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let blob = LabelStore::to_vec(scheme.labels(), enc);
        let view = ftc_core::store::LabelStoreView::open(&blob).unwrap();
        let store = ftc_core::compressed::compress_archive(&view);
        ConnectivityService::from_compressed(store.view().unwrap())
    }

    #[test]
    fn compressed_backing_answers_like_the_others() {
        let owned = torus_service(None);
        let compressed = torus_service_compressed(EdgeEncoding::Full);
        assert!(compressed.is_compressed());
        assert!(!owned.is_compressed());
        assert_eq!(compressed.encoding(), Some(EdgeEncoding::Full));
        assert!(compressed.labels().is_none());
        let faults = [(0usize, 1usize), (0, 4)];
        let pairs: Vec<(usize, usize)> =
            (0..12).flat_map(|s| (0..12).map(move |t| (s, t))).collect();
        assert_eq!(
            owned.query(&faults, &pairs).unwrap(),
            compressed.query(&faults, &pairs).unwrap()
        );
        // Error vocabulary matches too.
        assert_eq!(
            compressed.query(&[(0, 99)], &[(0, 1)]).unwrap_err(),
            ServeError::UnknownEdge { u: 0, v: 99 }
        );
        assert!(matches!(
            compressed.with_session_ids(&[999], |_| ()),
            Err(ServeError::UnknownEdgeId { id: 999 })
        ));
    }

    #[test]
    fn all_backings_answer_identically() {
        let owned = torus_service(None);
        let full = torus_service(Some(EdgeEncoding::Full));
        let compact = torus_service(Some(EdgeEncoding::Compact));
        assert!(owned.labels().is_some());
        assert_eq!(owned.encoding(), None);
        assert_eq!(full.encoding(), Some(EdgeEncoding::Full));
        let faults = [(0usize, 1usize), (0, 4)];
        let pairs: Vec<(usize, usize)> =
            (0..12).flat_map(|s| (0..12).map(move |t| (s, t))).collect();
        let a = owned.query(&faults, &pairs).unwrap();
        let b = full.query(&faults, &pairs).unwrap();
        let c = compact.query(&faults, &pairs).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a.len(), pairs.len());
        // Certified variant agrees on existence.
        let certs = owned.query_certified(&faults, &pairs).unwrap();
        for (cert, ans) in certs.iter().zip(&a) {
            assert_eq!(cert.is_some(), ans);
        }
    }

    #[test]
    fn errors_name_the_offending_argument() {
        for svc in [torus_service(None), torus_service(Some(EdgeEncoding::Full))] {
            assert_eq!(
                svc.query(&[(0, 99)], &[(0, 1)]).unwrap_err(),
                ServeError::UnknownEdge { u: 0, v: 99 }
            );
            // Unknown faults error even when every pair is trivial.
            assert_eq!(
                svc.query(&[(0, 99)], &[(3, 3)]).unwrap_err(),
                ServeError::UnknownEdge { u: 0, v: 99 }
            );
            assert_eq!(
                svc.query(&[], &[(0, 99)]).unwrap_err(),
                ServeError::VertexOutOfRange { v: 99 }
            );
            // Trivial pairs answer before the budget check…
            assert_eq!(
                svc.query(&[(0, 1), (1, 2), (2, 3)], &[(5, 5)])
                    .unwrap()
                    .as_slice(),
                &[true]
            );
            // …but non-trivial pairs surface it.
            assert!(matches!(
                svc.query(&[(0, 1), (1, 2), (2, 3)], &[(0, 5)]),
                Err(ServeError::Query(QueryError::TooManyFaults { .. }))
            ));
            assert!(matches!(
                svc.with_session_ids(&[999], |_| ()),
                Err(ServeError::UnknownEdgeId { id: 999 })
            ));
        }
    }

    #[test]
    fn with_session_exposes_certificates_and_faults_by_id() {
        let svc = torus_service(Some(EdgeEncoding::Compact));
        // (0,1) has some edge ID; with_session_ids([0, 1]) prepares the
        // first two edges as faults.
        let connected = svc
            .with_session_ids(&[0, 1], |served| {
                assert!(served.vertex(0).unwrap().is_some());
                assert!(served.vertex(99).unwrap().is_none());
                served.certified(0, 7).unwrap().map(<[(u32, u32)]>::to_vec)
            })
            .unwrap();
        assert!(connected.is_some());
        let by_pairs = svc
            .with_session(&[(0, 1), (0, 4)], |served| served.connected(0, 7).unwrap())
            .unwrap();
        assert!(by_pairs);
    }

    #[test]
    fn trivial_answer_agrees_with_query_and_orders_before_validation() {
        for svc in [torus_service(None), torus_service(Some(EdgeEncoding::Full))] {
            // Same vertex / same component / out of range.
            assert_eq!(svc.trivial_answer(3, 3), Ok(Some(true)));
            assert_eq!(svc.trivial_answer(0, 7), Ok(None));
            assert_eq!(
                svc.trivial_answer(0, 99),
                Err(ServeError::VertexOutOfRange { v: 99 })
            );
            // Whenever it answers, the full query path must agree — and
            // it answers without any fault set at all, which is exactly
            // the trivial-before-validation ordering answer() uses.
            for s in 0..svc.n() {
                for t in 0..svc.n() {
                    if let Some(a) = svc.trivial_answer(s, t).unwrap() {
                        assert_eq!(svc.query(&[], &[(s, t)]).unwrap().get(0), Some(a));
                    }
                }
            }
        }
        // A disconnected graph exercises the Some(false) arm.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let scheme = FtcScheme::build(&g, &Params::deterministic(1)).unwrap();
        let svc = ConnectivityService::from_labels(scheme.into_labels());
        assert_eq!(svc.trivial_answer(0, 3), Ok(Some(false)));
    }

    #[test]
    fn empty_faults_and_empty_pairs_are_valid() {
        let svc = torus_service(None);
        let answers = svc.query(&[], &[(0, 7), (3, 3)]).unwrap();
        assert_eq!(answers.as_slice(), &[true, true]);
        assert!(answers.all_connected());
        let none = svc.query(&[(0, 1)], &[]).unwrap();
        assert!(none.is_empty());
    }
}

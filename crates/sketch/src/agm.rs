//! AGM-style linear graph sketches with one-sparse recovery cells.
//!
//! This is the randomized outgoing-edge detector the paper de-randomizes
//! (Section 4.1 describes its two uses of randomness): a *sketch* is a grid
//! of cells indexed by (sampling level ℓ, repetition r). Cell (ℓ, r) of an
//! edge set `A` accumulates, over the edges of `A` that the seeded hash
//! assigns to level ℓ (probability 2^{-ℓ}), the XOR of their IDs and the
//! XOR of their fingerprints. If exactly one edge of `∂(S)` survives at
//! some level, the ID is read off directly and the fingerprint check
//! certifies one-sparsity — with failure probability 2⁻⁶⁴ per cell, and
//! overall per-query failure probability controlled by the repetition
//! count.
//!
//! Sketches are GF(2)-linear: the sketch of a symmetric difference is the
//! XOR of sketches, so the sketch of `∂(S)` is obtained by XORing vertex
//! sketches over `S`, exactly as in the deterministic scheme.

use std::fmt;

/// Parameters of an AGM sketch family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AgmParams {
    /// Number of geometric sampling levels (level 0 keeps everything).
    pub levels: usize,
    /// Independent repetitions per level (failure probability decays
    /// geometrically in this).
    pub reps: usize,
    /// Seed for the sampling and fingerprint hash functions.
    pub seed: u64,
}

impl AgmParams {
    /// A standard parameterization for an edge universe of size `m`:
    /// `⌈log₂ m⌉ + 2` levels and the requested number of repetitions.
    pub fn for_universe(m: usize, reps: usize, seed: u64) -> AgmParams {
        let levels = if m <= 1 {
            2
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 2
        };
        AgmParams { levels, reps, seed }
    }

    /// Number of cells in every sketch.
    pub fn cells(&self) -> usize {
        self.levels * self.reps
    }

    /// Size of one sketch in bits (two 64-bit words per cell).
    pub fn sketch_bits(&self) -> usize {
        self.cells() * 128
    }
}

/// splitmix64 — the seeded mixer used for both sampling and fingerprints.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A single one-sparse recovery cell: XOR of IDs and XOR of fingerprints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Cell {
    ids: u64,
    fps: u64,
}

/// A linear sketch of an edge (multi)set.
///
/// # Example
///
/// ```
/// use ftc_sketch::{AgmParams, SketchBuilder};
///
/// let params = AgmParams::for_universe(1000, 4, 7);
/// let builder = SketchBuilder::new(params);
/// let mut a = builder.empty();
/// builder.toggle_edge(&mut a, 0x1234);
/// builder.toggle_edge(&mut a, 0x5678);
/// let mut b = builder.empty();
/// builder.toggle_edge(&mut b, 0x5678);
/// a.xor_in(&b); // now sketches {0x1234}
/// assert_eq!(builder.detect(&a), Some(0x1234));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AgmSketch {
    cells: Vec<Cell>,
}

impl AgmSketch {
    /// XORs another sketch into this one (symmetric difference of the
    /// underlying sets).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn xor_in(&mut self, other: &AgmSketch) {
        assert_eq!(self.cells.len(), other.cells.len(), "sketch shape mismatch");
        for (c, o) in self.cells.iter_mut().zip(&other.cells) {
            c.ids ^= o.ids;
            c.fps ^= o.fps;
        }
    }

    /// `true` iff every cell is empty.
    pub fn is_zero(&self) -> bool {
        self.cells.iter().all(|c| c.ids == 0 && c.fps == 0)
    }

    /// Number of `u64` words in the flattened representation (two per
    /// cell: XOR of IDs, then XOR of fingerprints).
    pub fn num_words(&self) -> usize {
        2 * self.cells.len()
    }

    /// XORs this sketch into a flattened word accumulator laid out as
    /// `[ids₀, fps₀, ids₁, fps₁, …]` — the slab-merge path of the query
    /// engine, which keeps all fragment accumulators in one arena.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != self.num_words()`.
    pub fn xor_into_words(&self, dst: &mut [u64]) {
        assert_eq!(dst.len(), self.num_words(), "sketch shape mismatch");
        for (c, d) in self.cells.iter().zip(dst.chunks_exact_mut(2)) {
            d[0] ^= c.ids;
            d[1] ^= c.fps;
        }
    }
}

impl fmt::Debug for AgmSketch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let nonzero = self
            .cells
            .iter()
            .filter(|c| c.ids != 0 || c.fps != 0)
            .count();
        write!(
            f,
            "AgmSketch({} cells, {nonzero} nonzero)",
            self.cells.len()
        )
    }
}

/// Factory for sketches sharing one hash family (one `AgmParams`).
#[derive(Clone, Copy, Debug)]
pub struct SketchBuilder {
    params: AgmParams,
}

impl SketchBuilder {
    /// Creates a builder for the given parameters.
    pub fn new(params: AgmParams) -> SketchBuilder {
        SketchBuilder { params }
    }

    /// The parameters this builder uses.
    pub fn params(&self) -> AgmParams {
        self.params
    }

    /// An all-zero sketch (of the empty edge set).
    pub fn empty(&self) -> AgmSketch {
        AgmSketch {
            cells: vec![Cell::default(); self.params.cells()],
        }
    }

    /// Sampling test: is `edge_id` assigned to level `lvl` of repetition
    /// `rep`? Level ℓ keeps an edge with probability `2^{-ℓ}`; levels are
    /// nested per repetition (an edge at level ℓ is at all levels below),
    /// mirroring the classic construction.
    fn sampled(&self, edge_id: u64, lvl: usize, rep: usize) -> bool {
        if lvl == 0 {
            return true;
        }
        let h = mix(edge_id ^ mix(self.params.seed ^ (rep as u64) << 32));
        // Edge survives level ℓ iff the ℓ lowest bits of its hash are zero.
        let l = lvl.min(63);
        h & ((1u64 << l) - 1) == 0
    }

    /// Fingerprint of an edge ID under this builder's seed.
    fn fingerprint(&self, edge_id: u64) -> u64 {
        mix(edge_id ^ mix(self.params.seed.wrapping_add(0xf1f2_f3f4)))
    }

    /// Toggles (XOR-inserts) an edge into a sketch.
    ///
    /// # Panics
    ///
    /// Panics if `edge_id == 0` (zero is unrepresentable in an XOR cell).
    pub fn toggle_edge(&self, sketch: &mut AgmSketch, edge_id: u64) {
        assert_ne!(edge_id, 0, "edge IDs must be nonzero");
        let fp = self.fingerprint(edge_id);
        for rep in 0..self.params.reps {
            for lvl in 0..self.params.levels {
                if self.sampled(edge_id, lvl, rep) {
                    let cell = &mut sketch.cells[rep * self.params.levels + lvl];
                    cell.ids ^= edge_id;
                    cell.fps ^= fp;
                }
            }
        }
    }

    /// Attempts to recover one edge from the sketched set: scans cells for
    /// a fingerprint-validated one-sparse cell. Returns `None` when the
    /// sketch is zero *or* no cell validates (a whp-bounded failure for
    /// non-empty sets).
    pub fn detect(&self, sketch: &AgmSketch) -> Option<u64> {
        for cell in &sketch.cells {
            if cell.ids != 0 && cell.fps == self.fingerprint(cell.ids) {
                return Some(cell.ids);
            }
        }
        None
    }

    /// [`SketchBuilder::detect`] over the flattened word layout of
    /// [`AgmSketch::xor_into_words`] — lets the query engine detect
    /// straight from its accumulator arena without materializing a sketch.
    pub fn detect_words(&self, words: &[u64]) -> Option<u64> {
        for cell in words.chunks_exact(2) {
            if cell[0] != 0 && cell[1] == self.fingerprint(cell[0]) {
                return Some(cell[0]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builder() -> SketchBuilder {
        SketchBuilder::new(AgmParams::for_universe(1 << 16, 6, 0xfeed))
    }

    #[test]
    fn params_shapes() {
        let p = AgmParams::for_universe(1024, 5, 1);
        assert_eq!(p.levels, 12);
        assert_eq!(p.cells(), 60);
        assert_eq!(p.sketch_bits(), 60 * 128);
    }

    #[test]
    fn single_edge_detects_exactly() {
        let b = builder();
        let mut s = b.empty();
        b.toggle_edge(&mut s, 42);
        assert_eq!(b.detect(&s), Some(42));
        assert!(!s.is_zero());
    }

    #[test]
    fn double_toggle_cancels() {
        let b = builder();
        let mut s = b.empty();
        b.toggle_edge(&mut s, 42);
        b.toggle_edge(&mut s, 42);
        assert!(s.is_zero());
        assert_eq!(b.detect(&s), None);
    }

    #[test]
    fn xor_computes_symmetric_difference() {
        let b = builder();
        let mut s1 = b.empty();
        for id in [10u64, 20, 30] {
            b.toggle_edge(&mut s1, id);
        }
        let mut s2 = b.empty();
        for id in [20u64, 30] {
            b.toggle_edge(&mut s2, id);
        }
        s1.xor_in(&s2);
        assert_eq!(b.detect(&s1), Some(10));
    }

    #[test]
    fn detects_from_moderately_large_sets() {
        // With 6 repetitions the failure probability per set is tiny; over
        // 50 random-ish sets we expect no failures (seeded, deterministic).
        let b = builder();
        let mut failures = 0;
        for trial in 0..50u64 {
            let mut s = b.empty();
            let size = 2 + (trial % 17) as usize;
            let members: Vec<u64> = (0..size as u64)
                .map(|i| mix(trial * 1000 + i) | 1)
                .collect();
            for &id in &members {
                b.toggle_edge(&mut s, id);
            }
            match b.detect(&s) {
                Some(id) => assert!(members.contains(&id), "detected a non-member"),
                None => failures += 1,
            }
        }
        assert_eq!(failures, 0, "whp detection failed {failures}/50 times");
    }

    #[test]
    fn detected_edge_is_always_a_member_or_none() {
        // Soundness sweep: fingerprint validation keeps false positives out.
        let b = SketchBuilder::new(AgmParams::for_universe(256, 2, 9));
        for trial in 0..200u64 {
            let members: Vec<u64> = (0..(trial % 9)).map(|i| mix(trial ^ i) | 1).collect();
            let mut s = b.empty();
            for &id in &members {
                b.toggle_edge(&mut s, id);
            }
            if let Some(id) = b.detect(&s) {
                assert!(members.contains(&id));
            }
        }
    }

    #[test]
    fn word_slab_detection_matches_sketch_detection() {
        let b = builder();
        let mut s1 = b.empty();
        let mut s2 = b.empty();
        for id in [10u64, 20, 30] {
            b.toggle_edge(&mut s1, id);
        }
        for id in [20u64, 30] {
            b.toggle_edge(&mut s2, id);
        }
        let mut words = vec![0u64; s1.num_words()];
        s1.xor_into_words(&mut words);
        s2.xor_into_words(&mut words);
        let mut merged = s1.clone();
        merged.xor_in(&s2);
        assert_eq!(b.detect_words(&words), b.detect(&merged));
        assert_eq!(b.detect_words(&words), Some(10));
        assert_eq!(b.detect_words(&vec![0u64; s1.num_words()]), None);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_edge_rejected() {
        let b = builder();
        let mut s = b.empty();
        b.toggle_edge(&mut s, 0);
    }
}

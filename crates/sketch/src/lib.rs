//! Randomized machinery: the Dory–Parter-style AGM graph sketch baseline
//! and the random-halving sparsification hierarchy (paper Appendix A).
//!
//! The paper's framework is modular: swapping the deterministic ε-net
//! sparsifier for plain random edge halving yields a randomized FTC scheme
//! with *full* query support competitive with Dory–Parter (Theorem 1's third
//! row), while the classic Ahn–Guha–McGregor sketch yields the original
//! *whp*-correct scheme the paper de-randomizes. Both live here:
//!
//! * [`sampling`] — Proposition 5: iid halving levels and the
//!   `k = 5f·log₂ n` threshold that makes them an (S_{f,T}, k)-good
//!   hierarchy with high probability;
//! * [`agm`] — a from-scratch AGM-style sketch: geometric edge-sampling
//!   levels × independent repetitions of one-sparse recovery cells with
//!   fingerprint validation. Linear (XOR-mergeable) by construction, but
//!   each query is only correct with high probability — the benchmark
//!   harness measures exactly that gap (experiment E4).

pub mod agm;
pub mod sampling;

pub use agm::{AgmParams, AgmSketch, SketchBuilder};
pub use sampling::{random_halving_levels, sampling_threshold};

//! Random-halving sparsification (paper Appendix A, Proposition 5).
//!
//! `E_{i+1}` keeps each element of `E_i` independently with probability
//! 1/2. With high probability the result is an (S_{f,T}, 5f·log₂ n)-good
//! hierarchy: any vertex set whose current boundary exceeds `5f·log₂ n`
//! edges keeps at least one boundary edge at the next level, and levels
//! shrink geometrically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The whp-good threshold for the sampled hierarchy: `5·f·⌈log₂ n⌉`
/// (at least 1).
pub fn sampling_threshold(f: usize, n: usize) -> usize {
    let log = if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    };
    (5 * f * log).max(1)
}

/// Builds the halving levels over the item indices `0..count`: level 0 is
/// everything; each later level keeps every item of the previous one with
/// probability 1/2; the last level is empty.
///
/// # Example
///
/// ```
/// use ftc_sketch::random_halving_levels;
///
/// let levels = random_halving_levels(1000, 42);
/// assert_eq!(levels[0].len(), 1000);
/// assert!(levels.last().unwrap().is_empty());
/// for w in levels.windows(2) {
///     assert!(w[1].iter().all(|e| w[0].contains(e)), "levels are nested");
/// }
/// ```
pub fn random_halving_levels(count: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut levels: Vec<Vec<usize>> = vec![(0..count).collect()];
    while !levels.last().expect("non-empty by construction").is_empty() {
        let prev = levels.last().unwrap();
        let next: Vec<usize> = prev
            .iter()
            .copied()
            .filter(|_| rng.random::<bool>())
            .collect();
        // Guard against the (exponentially unlikely) non-shrinking tail to
        // keep the hierarchy depth deterministic-in-expectation bounded.
        if next.len() == prev.len() && !next.is_empty() {
            continue;
        }
        levels.push(next);
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_formula() {
        assert_eq!(sampling_threshold(1, 2), 5);
        assert_eq!(sampling_threshold(2, 1024), 100);
        assert_eq!(sampling_threshold(3, 1025), 165);
        assert_eq!(sampling_threshold(0, 1024), 1);
    }

    #[test]
    fn levels_are_nested_and_terminate() {
        let levels = random_halving_levels(500, 7);
        assert_eq!(levels[0].len(), 500);
        assert!(levels.last().unwrap().is_empty());
        for w in levels.windows(2) {
            let prev: std::collections::HashSet<_> = w[0].iter().collect();
            assert!(w[1].iter().all(|e| prev.contains(e)));
        }
        // Depth should be around log2(500) ≈ 9; allow generous slack.
        assert!(levels.len() <= 40, "depth {} too large", levels.len());
    }

    #[test]
    fn seeded_reproducibility() {
        assert_eq!(random_halving_levels(200, 1), random_halving_levels(200, 1));
        assert_ne!(random_halving_levels(200, 1), random_halving_levels(200, 2));
    }

    #[test]
    fn empty_input() {
        let levels = random_halving_levels(0, 0);
        assert_eq!(levels, vec![vec![]]);
    }

    #[test]
    fn sizes_halve_roughly() {
        let levels = random_halving_levels(4096, 3);
        // Level 3 should be within a factor of 2 of 4096/8.
        let l3 = levels.get(3).map(Vec::len).unwrap_or(0);
        assert!((170..=1536).contains(&l3), "level-3 size {l3} implausible");
    }
}

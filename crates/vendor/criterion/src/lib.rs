//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate vendors the
//! subset of criterion's API the workspace benches use — `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], [`BenchmarkGroup`],
//! [`BenchmarkId`], and [`Bencher::iter`] — over a real (median-of-samples)
//! wall-clock measurement loop, so `cargo bench` produces usable numbers.
//! Swap the workspace `criterion` entry back to crates.io for the full
//! statistical harness.

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of one benchmark case: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function/parameter` benchmark ID.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An ID carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Median nanoseconds per iteration, recorded by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`: warms up, picks an iteration count targeting a
    /// fixed measurement window, then records the median of several
    /// batched samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find how many iterations fit ~20 ms.
        let t0 = Instant::now();
        std_black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(7);
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim reports ns/iter only.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one case with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        println!(
            "{}/{:<40} {:>12}/iter",
            self.name,
            id,
            format_ns(b.ns_per_iter)
        );
        self
    }

    /// Runs one case without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!(
            "{}/{:<40} {:>12}/iter",
            self.name,
            id,
            format_ns(b.ns_per_iter)
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {
        println!();
    }
}

/// Throughput hints (accepted, not reported, by the shim).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (no-op in the shim).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            name,
            _parent: self,
        }
    }

    /// Runs a standalone benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        println!("{:<48} {:>12}/iter", name, format_ns(b.ns_per_iter));
        self
    }

    /// Final reporting hook (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut b = Bencher { ns_per_iter: 0.0 };
        b.iter(|| black_box((0..100u64).sum::<u64>()));
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }

    #[test]
    fn formatting_scales() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}

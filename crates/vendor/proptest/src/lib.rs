//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! subset of proptest's API the workspace tests use: the [`proptest!`]
//! macro, [`Strategy`] with [`Strategy::prop_map`], range and tuple
//! strategies, [`any`], [`collection::vec`] / [`collection::btree_set`],
//! `ProptestConfig::with_cases`, and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! from the test name), so failures reproduce exactly; there is no
//! shrinking. Swap the workspace `proptest` entry back to crates.io for
//! the full engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from a test identifier (FNV-1a of the name).
    pub fn for_test(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Rejection marker returned by `prop_assume!` failures.
#[derive(Clone, Copy, Debug)]
pub struct Rejected;

/// The value-generation interface (subset: sampling plus `prop_map`).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Integer types with uniform range strategies.
pub trait RangedInt: Copy {
    /// Uniform draw from `[lo, hi]`.
    fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// The maximum value (upper bound of `lo..` strategies).
    const MAX_VALUE: Self;
}

macro_rules! impl_ranged {
    ($($t:ty),*) => {$(
        impl RangedInt for $t {
            fn uniform(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width range: one raw draw is already uniform.
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return raw as $t;
                }
                let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (lo as u128).wrapping_add(raw % span) as $t
            }
            const MAX_VALUE: Self = <$t>::MAX;
        }
    )*};
}

impl_ranged!(u8, u16, u32, u64, u128, usize);

impl<T: RangedInt> Strategy for Range<T>
where
    T: std::ops::Sub<Output = T> + From<u8> + PartialOrd,
{
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform(rng, self.start, self.end - T::from(1u8))
    }
}

impl<T: RangedInt> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform(rng, *self.start(), *self.end())
    }
}

impl<T: RangedInt> Strategy for RangeFrom<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::uniform(rng, self.start, T::MAX_VALUE)
    }
}

/// Types with a full-domain default strategy (subset of `Arbitrary`).
pub trait ArbitraryValue {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                <$t>::uniform(rng, 0, <$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (subset: `vec` and `btree_set`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;

    /// Length ranges accepted by the collection strategies.
    pub trait SizeRange {
        /// Draws a target length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            Strategy::sample(self, rng)
        }
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `len` (best-effort under duplicate draws, like real proptest).
    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.sample_len(rng);
            let mut out = BTreeSet::new();
            let mut tries = 0usize;
            while out.len() < target && tries < 64 * target.max(1) {
                out.insert(self.element.sample(rng));
                tries += 1;
            }
            out
        }
    }
}

/// Per-run configuration (subset: the case count).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Declares property tests: each function runs `cases` times with inputs
/// drawn from its strategies. Failures report the case index; re-running
/// is deterministic per test name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $( $(#[doc = $doc:expr])* #[test] fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block )+ ) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::Rejected> = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::Rejected) => {
                            let _ = case; // rejected by prop_assume!; draw a fresh case
                            continue;
                        }
                    }
                }
            }
        )+
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

/// Asserts equality inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::Rejected);
        }
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_any_sample_in_bounds() {
        let mut rng = crate::TestRng::for_test("bounds");
        for _ in 0..200 {
            let x = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::sample(&(1u64..), &mut rng);
            assert!(y >= 1);
            let z = Strategy::sample(&(0u64..=4), &mut rng);
            assert!(z <= 4);
        }
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = crate::TestRng::for_test("sizes");
        for _ in 0..50 {
            let v = Strategy::sample(&collection::vec(any::<u64>(), 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::sample(&collection::btree_set(1u64.., 3..=3usize), &mut rng);
            assert_eq!(s.len(), 3);
        }
    }

    #[test]
    fn prop_map_composes() {
        let mut rng = crate::TestRng::for_test("map");
        let s = (1u64..100).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = Strategy::sample(&s, &mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 200);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_and_asserts(a in 0u64..50, b in 0u64..50) {
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_assume_rejects(a in 0u64..10) {
            prop_assume!(a != 3);
            prop_assert!(a != 3);
        }
    }
}

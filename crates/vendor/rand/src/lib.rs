//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the 0.9-series API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random`], [`Rng::random_range`],
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic per seed, which is all the workspace
//! requires (every random family takes an explicit seed). Swap the
//! workspace `rand` entry back to crates.io to use the real crate.

use std::ops::{Bound, RangeBounds};

/// Seedable random generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator interface (subset).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a [`Standard`]-distributed type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from an integer range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: UniformInt,
        R: RangeBounds<T>,
    {
        T::sample_range(self, &range)
    }
}

/// Types samplable from 64 random bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable over a range.
pub trait UniformInt: Copy {
    /// Draws uniformly from the bounds (inclusive-exclusive normalized).
    fn sample_range<R: Rng>(rng: &mut R, range: &impl RangeBounds<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: &impl RangeBounds<Self>) -> Self {
                let lo: u128 = match range.start_bound() {
                    Bound::Included(&x) => x as u128,
                    Bound::Excluded(&x) => x as u128 + 1,
                    Bound::Unbounded => 0,
                };
                let hi: u128 = match range.end_bound() {
                    Bound::Included(&x) => x as u128,
                    Bound::Excluded(&x) => (x as u128).checked_sub(1).expect("empty range"),
                    Bound::Unbounded => <$t>::MAX as u128,
                };
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = hi - lo + 1;
                // Multiply-shift rejection-free mapping is fine here: the
                // workspace uses ranges far below 2^64, where the modulo
                // bias of widening-multiply is negligible for test data —
                // but keep it exact anyway via 128-bit reduction.
                let x = rng.next_u64() as u128;
                (lo + (x * span >> 64)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl<R: Rng + ?Sized> Rng for &mut R {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place slice shuffling (subset of rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: u64 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
        // All residues of a small range get hit.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn standard_samples_typecheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: bool = rng.random();
        let _: u64 = rng.random();
        let f: f64 = rng.random();
        assert!((0.0..1.0).contains(&f));
    }
}

//! Distributed construction of the labels in the CONGEST model
//! (paper Section 8 / Theorem 3): genuine message-passing node programs
//! elect a BFS tree, compute ancestry orders, and aggregate outdetect
//! labels; round counts follow the Õ(√m·D + f²) profile.
//!
//! Run with: `cargo run --release --example congest_construction`

use ftc::congest::{distributed_build, DistributedConfig};
use ftc::graph::Graph;

fn main() {
    for (name, g) in [
        ("5×5 torus", Graph::torus(5, 5)),
        ("4-dim hypercube", Graph::hypercube(4)),
        ("8×3 grid", Graph::grid(8, 3)),
    ] {
        let out = distributed_build(&g, &DistributedConfig::new(2)).expect("distributed build");
        let r = out.rounds;
        println!("{name}: n = {}, m = {}", g.n(), g.m());
        println!(
            "  rounds: BFS {} | sizes {} | orders {} | outdetect {} | netfind(model) {} | total {}",
            r.bfs,
            r.subtree_sizes,
            r.order_assignment,
            r.outdetect,
            r.netfind_model,
            r.total()
        );

        // The distributedly constructed labels answer queries like any
        // centrally built labeling.
        let l = out.scheme.labels();
        let session = l
            .session([l.edge_label_by_id(0), l.edge_label_by_id(1)])
            .unwrap();
        let ok = session
            .connected(l.vertex_label(0), l.vertex_label(g.n() - 1))
            .unwrap();
        println!("  sanity query with 2 faults: connected = {ok}");
    }
}

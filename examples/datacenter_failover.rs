//! Datacenter failover scenario — the motivating use case of the paper's
//! introduction: a distributed system wants a *compact, distributed*
//! representation of network connectivity that survives link failures.
//!
//! Each switch/host stores only its own label; a controller that learns of
//! a set of failed links (their labels) can answer "can pod A still reach
//! pod B?" for any pair, without a topology database.
//!
//! Run with: `cargo run --release --example datacenter_failover`

use ftc::core::{FtcScheme, Params, QueryError};
use ftc::graph::Graph;

fn main() {
    // A fat-tree-like fabric: 6 core switches, 6 aggregation switches (one
    // per pod), 4 hosts per pod. Aggregation switches connect to every
    // core switch: 6-way redundancy between pods.
    let pods = 6;
    let hosts_per_pod = 4;
    let g = Graph::fat_tree(pods, hosts_per_pod);
    let host0 = 2 * pods;
    println!(
        "fat-tree fabric: {} switches+hosts, {} links, {}-way core redundancy",
        g.n(),
        g.m(),
        pods
    );

    let f = 4;
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).expect("build");
    let size = scheme.size_report();
    println!(
        "labeling (f = {f}): {} bits/vertex, {} bits/edge, total {:.1} KiB",
        size.vertex_bits,
        size.edge_bits,
        size.total_bits as f64 / 8.0 / 1024.0
    );
    let labels = scheme.labels();

    let host = |pod: usize, i: usize| host0 + pod * hosts_per_pod + i;
    let agg = |pod: usize| pods + pod;
    let core = |c: usize| c;

    // Scenario 1: three core uplinks of pod 0 fail — pod 0 still reaches
    // pod 3 through the remaining cores.
    let session = labels
        .session((0..3).map(|c| labels.edge_label(agg(0), core(c)).expect("uplink")))
        .unwrap();
    let ok = session
        .connected(
            labels.vertex_label(host(0, 0)),
            labels.vertex_label(host(3, 1)),
        )
        .unwrap();
    println!("3 uplinks of pod 0 down: host(0,0) ↔ host(3,1) = {ok}");
    assert!(ok);

    // Scenario 2: a host's access link fails — that host is cut off, the
    // rest of its pod is fine.
    let access = labels
        .session([labels.edge_label(agg(2), host(2, 3)).expect("access link")])
        .unwrap();
    let cut = access
        .connected(
            labels.vertex_label(host(2, 3)),
            labels.vertex_label(host(2, 0)),
        )
        .unwrap();
    println!("access link of host(2,3) down: host(2,3) ↔ host(2,0) = {cut}");
    assert!(!cut);

    // Scenario 3: sweep — for every pod pair, how many simultaneous uplink
    // failures of the source pod can the fabric tolerate? (Answer: all but
    // one of its uplinks, i.e. up to f of them with our budget.)
    let mut tolerated = 0usize;
    let mut queries = 0usize;
    for p in 0..pods {
        for q in 0..pods {
            if p == q {
                continue;
            }
            for kill in 1..=f.min(pods - 1) {
                let session = labels
                    .session((0..kill).map(|c| labels.edge_label(agg(p), core(c)).unwrap()))
                    .unwrap_or_else(|e| match e {
                        QueryError::TooManyFaults { .. } => unreachable!("kill <= f"),
                        e => panic!("session failed: {e}"),
                    });
                queries += 1;
                match session.connected(
                    labels.vertex_label(host(p, 0)),
                    labels.vertex_label(host(q, 0)),
                ) {
                    Ok(true) => tolerated += 1,
                    Ok(false) => {}
                    Err(e) => panic!("query failed: {e}"),
                }
            }
        }
    }
    println!(
        "failure sweep: {tolerated}/{queries} pod-pair queries remained connected (expected: all, \
         since {} uplinks survive every scenario)",
        pods - f
    );
    assert_eq!(tolerated, queries);
}

//! Datacenter failover scenario — the motivating use case of the paper's
//! introduction: a distributed system wants a *compact, distributed*
//! representation of network connectivity that survives link failures.
//!
//! Each switch/host stores only its own label; a controller that learns of
//! a set of failed links can answer "can pod A still reach pod B?" for any
//! pair, without a topology database. This example runs the controller as
//! a [`ConnectivityService`]: one `Send + Sync + Clone` handle shared by
//! every worker thread, faults named by endpoint pairs, session scratch
//! drawn from the service's internal lock-free pool.
//!
//! Run with: `cargo run --release --example datacenter_failover`

use ftc::core::{FtcScheme, Params};
use ftc::graph::Graph;
use ftc::serve::{ConnectivityService, ServeError};

fn main() {
    // A fat-tree-like fabric: 6 core switches, 6 aggregation switches (one
    // per pod), 4 hosts per pod. Aggregation switches connect to every
    // core switch: 6-way redundancy between pods.
    let pods = 6;
    let hosts_per_pod = 4;
    let g = Graph::fat_tree(pods, hosts_per_pod);
    let host0 = 2 * pods;
    println!(
        "fat-tree fabric: {} switches+hosts, {} links, {}-way core redundancy",
        g.n(),
        g.m(),
        pods
    );

    let f = 4;
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).expect("build");
    let size = scheme.size_report();
    println!(
        "labeling (f = {f}): {} bits/vertex, {} bits/edge, total {:.1} KiB",
        size.vertex_bits,
        size.edge_bits,
        size.total_bits as f64 / 8.0 / 1024.0
    );

    // The controller: one shared serving handle over the owned labels.
    let service = ConnectivityService::from_labels(scheme.into_labels());

    let host = |pod: usize, i: usize| host0 + pod * hosts_per_pod + i;
    let agg = |pod: usize| pods + pod;
    let core = |c: usize| c;

    // Scenario 1: three core uplinks of pod 0 fail — pod 0 still reaches
    // pod 3 through the remaining cores.
    let uplinks: Vec<(usize, usize)> = (0..3).map(|c| (agg(0), core(c))).collect();
    let answers = service
        .query(&uplinks, &[(host(0, 0), host(3, 1))])
        .unwrap();
    println!(
        "3 uplinks of pod 0 down: host(0,0) ↔ host(3,1) = {}",
        answers.get(0).unwrap()
    );
    assert!(answers.all_connected());

    // Scenario 2: a host's access link fails — that host is cut off, the
    // rest of its pod is fine.
    let access = [(agg(2), host(2, 3))];
    let answers = service
        .query(
            &access,
            &[(host(2, 3), host(2, 0)), (host(2, 0), host(2, 1))],
        )
        .unwrap();
    println!(
        "access link of host(2,3) down: host(2,3) ↔ host(2,0) = {}, host(2,0) ↔ host(2,1) = {}",
        answers.get(0).unwrap(),
        answers.get(1).unwrap()
    );
    assert_eq!(answers.as_slice(), &[false, true]);

    // Scenario 3: concurrent failure sweep — one worker thread per source
    // pod, all hammering the same service handle: for every pod pair, how
    // many simultaneous uplink failures of the source pod can the fabric
    // tolerate? (Answer: all scenarios stay connected, since at least
    // `pods − f` uplinks survive every one.)
    let (tolerated, queries): (usize, usize) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..pods)
            .map(|p| {
                let service = service.clone();
                scope.spawn(move || {
                    let mut tolerated = 0usize;
                    let mut queries = 0usize;
                    for q in 0..pods {
                        if p == q {
                            continue;
                        }
                        for kill in 1..=f.min(pods - 1) {
                            let faults: Vec<(usize, usize)> =
                                (0..kill).map(|c| (agg(p), core(c))).collect();
                            let pairs = [(host(p, 0), host(q, 0))];
                            queries += 1;
                            match service.query(&faults, &pairs) {
                                Ok(a) if a.all_connected() => tolerated += 1,
                                Ok(_) => {}
                                Err(ServeError::Query(e)) => panic!("query failed: {e}"),
                                Err(e) => panic!("bad request: {e}"),
                            }
                        }
                    }
                    (tolerated, queries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker"))
            .fold((0, 0), |(a, b), (c, d)| (a + c, b + d))
    });
    println!(
        "failure sweep ({pods} threads, one shared service): {tolerated}/{queries} pod-pair \
         queries remained connected (expected: all, since {} uplinks survive every scenario)",
        pods - f
    );
    assert_eq!(tolerated, queries);
}

//! Forbidden-set routing (paper Corollary 2): route packets around an
//! adversarial set of failed links, using only the labeling-derived
//! certificate — then measure the stretch against true shortest paths.
//!
//! Run with: `cargo run --release --example forbidden_set_routing`

use ftc::graph::{connectivity, generators, Graph};
use ftc::routing::ForbiddenSetRouter;

fn main() {
    let g = Graph::torus(5, 5);
    println!("network: 5×5 torus, n = {}, m = {}", g.n(), g.m());
    let router = ForbiddenSetRouter::new(&g, 3).expect("preprocess");
    let tables = router.table_report();
    println!(
        "routing tables: total {:.1} KiB, max local {:.2} KiB",
        tables.total_bits as f64 / 8.0 / 1024.0,
        tables.max_local_bits as f64 / 8.0 / 1024.0
    );

    // A concrete route around two failures.
    let faults = vec![g.find_edge(0, 1).unwrap(), g.find_edge(0, 5).unwrap()];
    let path = router.route(0, 12, &faults).unwrap().expect("connected");
    println!("route 0 → 12 avoiding links (0,1) and (0,5): {path:?}");
    let opt = connectivity::distance_avoiding(&g, 0, 12, &faults).unwrap();
    println!(
        "  length {} vs optimal {} (stretch {:.2})",
        path.len() - 1,
        opt,
        (path.len() - 1) as f64 / opt as f64
    );

    // Stretch sweep over random fault sets.
    let mut worst: f64 = 1.0;
    let mut sum = 0.0;
    let mut count = 0usize;
    for seed in 0..20u64 {
        let faults = generators::random_fault_set(&g, 3, seed);
        for s in 0..g.n() {
            for t in (s + 1)..g.n() {
                if let Some(p) = router.route(s, t, &faults).unwrap() {
                    let opt = connectivity::distance_avoiding(&g, s, t, &faults)
                        .expect("router said connected");
                    let stretch = (p.len() - 1) as f64 / opt as f64;
                    worst = worst.max(stretch);
                    sum += stretch;
                    count += 1;
                }
            }
        }
    }
    println!(
        "stretch over {count} routed pairs with |F| = 3: mean {:.3}, worst {:.2}",
        sum / count as f64,
        worst
    );
}

//! Reproduces the paper's two illustrative figures as a runnable
//! walkthrough (experiments E5/E6 of DESIGN.md):
//!
//! * **Figure 1** — the auxiliary graph `G′`: subdividing every non-tree
//!   edge and extending the spanning tree;
//! * **Figure 2** — the Euler-tour geometric interpretation of cut sets:
//!   directed tree-edge numbering, non-tree edges as 2-D points, and the
//!   Lemma 3 "checkered region" membership test.
//!
//! Run with: `cargo run --release --example paper_figures`

use ftc::core::auxgraph::AuxGraph;
use ftc::graph::{EulerTour, Graph, RootedTree};

fn main() {
    // A 12-edge instance in the spirit of the paper's Figure 1: a spanning
    // tree (e1..e7) plus five non-tree chords (the paper's e'-edges).
    let g = Graph::from_edges(
        8,
        &[
            (0, 1), // e1  (tree)
            (1, 2), // e2  (tree)
            (2, 3), // e3' (chord)
            (0, 4), // e4  (tree)
            (4, 5), // e5  (tree)
            (5, 6), // e6  (tree)
            (6, 7), // e7  (tree)
            (3, 7), // e8' (chord)
            (1, 4), // e9' (chord)
            (2, 6), // e10'(chord)
            (1, 3), // e11 (tree: BFS reaches 3 via 2? shown below)
            (0, 5), // e12'(chord)
        ],
    );
    let t = RootedTree::bfs(&g, 0);

    println!("=== Figure 1: auxiliary graph construction ===");
    println!("input graph G: n = {}, m = {}", g.n(), g.m());
    println!("spanning tree T (BFS from 0):");
    for e in t.tree_edges() {
        let (u, v) = g.endpoints(e);
        println!("  tree edge e{} = ({u}, {v})", e + 1);
    }
    let chords: Vec<_> = t.non_tree_edges().collect();
    println!("non-tree edges (to be subdivided):");
    for &e in &chords {
        let (u, v) = g.endpoints(e);
        println!("  chord e{} = ({u}, {v})", e + 1);
    }

    let aux = AuxGraph::build(&g, &t);
    println!(
        "auxiliary graph G′: {} vertices ({} original + {} subdividers), all {} original edges now tree edges of T′",
        aux.aux_n,
        aux.orig_n,
        aux.aux_n - aux.orig_n,
        g.m()
    );
    for (j, &(x, v)) in aux.nontree.iter().enumerate() {
        let e = aux.nontree_orig[j];
        let (u, w) = g.endpoints(e);
        println!(
            "  chord e{} = ({u}, {w})  →  tree half σ(e{}) = ({u}, x{j}) + non-tree half (x{j} = aux {x}, {v})",
            e + 1,
            e + 1,
        );
    }

    println!();
    println!("=== Figure 2: Euler-tour geometric interpretation ===");
    let tour = EulerTour::new(&aux.tree_graph, &aux.tree);
    println!("vertex coordinates c(v) (first-visit Euler numbers in T′):");
    for v in 0..aux.orig_n {
        println!("  c({v}) = {}", tour.coord(v));
    }
    println!("non-tree edges of G′ as 2-D points (c(x_e), c(v)):");
    for j in 0..aux.nontree.len() {
        let (x, y) = aux.nontree_point(j);
        let e = aux.nontree_orig[j];
        println!("  e{}' → ({x}, {y})", e + 1);
    }

    // Lemma 3 demonstration: pick S = the subtree below some tree edge and
    // show that exactly the crossing chords land in the checkered region.
    let s_root = 4usize; // S = subtree of vertex 4 in T′
    let mut in_s = vec![false; aux.aux_n];
    for (v, flag) in in_s.iter_mut().enumerate() {
        if aux.tree.is_ancestor(s_root, v) {
            *flag = true;
        }
    }
    let boundary = tour.boundary_directed_numbers(&aux.tree_graph, &aux.tree, &in_s);
    println!();
    println!(
        "take S = subtree of vertex {s_root} in T′: ∂T⃗(S) has {} directed edges with tour numbers {:?}",
        boundary.len(),
        boundary
    );
    println!("Lemma 3 membership check (point in checkered region ⇔ chord crosses S):");
    for j in 0..aux.nontree.len() {
        let (a, b) = aux.nontree[j];
        let crossing = in_s[a] != in_s[b];
        let point = {
            let (x, y) = aux.nontree_point(j);
            (x, y)
        };
        let in_region = EulerTour::in_cut_region(point, &boundary);
        let e = aux.nontree_orig[j];
        println!(
            "  e{}' at {:?}: crossing = {crossing}, in region = {in_region}  {}",
            e + 1,
            point,
            if crossing == in_region {
                "✓"
            } else {
                "✗ MISMATCH"
            }
        );
        assert_eq!(crossing, in_region, "Lemma 3 must hold");
    }
    println!();
    println!("All chords classified correctly — Lemma 3 verified on this instance.");
}

//! Quickstart: build an f-FTC labeling, archive the labels as one blob,
//! serve connectivity queries under edge faults straight from the
//! archive — concurrently, without ever touching the graph again.
//!
//! Run with: `cargo run --release --example quickstart`

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params};
use ftc::graph::Graph;
use ftc::serve::ConnectivityService;

fn main() {
    // A 4×4 torus: every vertex has degree 4, the graph is 4-edge-connected.
    let g = Graph::torus(4, 4);
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // Build the deterministic labeling for up to f = 3 simultaneous edge
    // faults (the paper's near-linear construction, Theorem 1 bullet 2).
    // The staged builder fans the label-encoding stage across one worker
    // per core; the labels are byte-identical for every thread count.
    let scheme = FtcScheme::builder(&g)
        .params(&Params::deterministic(3))
        .threads(0)
        .build()
        .expect("build");
    let size = scheme.size_report();
    println!(
        "labels: {} bits/vertex, {} bits/edge (k = {}, {} hierarchy levels)",
        size.vertex_bits, size.edge_bits, size.k, size.levels
    );

    // Archive the whole labeling as a single indexed blob — the unit you
    // ship to serving processes (`ftc-cli build` writes exactly this).
    let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Compact);
    println!("archive: {} bytes (compact edge encoding)", blob.len());

    // Open zero-copy: one validation pass, then O(1)/O(log m) label
    // views with no per-label allocation.
    let view = LabelStoreView::open(&blob).expect("well-formed archive");

    // Three faults around vertex 0 — the torus stays connected. Faults
    // are named by endpoint pairs; the archive's index resolves them.
    let session = view
        .session([(0, 1), (0, 4), (0, 12)])
        .expect("well-formed fault set");
    let ok = session
        .connected(view.vertex(0).unwrap(), view.vertex(10).unwrap())
        .expect("well-formed query");
    println!("0 ↔ 10 with 3 faults around vertex 0: connected = {ok}");
    assert!(ok);

    // Serve the same archive to many threads through one handle: the
    // blob moves into an `Arc<[u8]>`, the service is Send + Sync +
    // Clone, and every query draws its session scratch from an internal
    // lock-free pool.
    let service = ConnectivityService::from_archive_bytes(blob).expect("well-formed archive");
    std::thread::scope(|s| {
        for worker in 0..4 {
            let service = service.clone();
            s.spawn(move || {
                let answers = service
                    .query(&[(0, 1), (0, 4), (0, 12)], &[(0, 10), (5, 9)])
                    .expect("well-formed queries");
                assert!(answers.all_connected());
                println!("worker {worker}: both pairs connected under 3 faults");
            });
        }
    });

    let labels = scheme.labels();

    // Cut all four edges of vertex 0? That needs f = 4; with our f = 3
    // budget the decoder reports the violation instead of guessing.
    let err = labels
        .session([
            labels.edge_label(0, 1).unwrap(),
            labels.edge_label(0, 4).unwrap(),
            labels.edge_label(0, 12).unwrap(),
            labels.edge_label(0, 3).unwrap(),
        ])
        .unwrap_err();
    println!("four faults against an f = 3 labeling: {err}");

    // Rebuild with f = 4 and isolate vertex 0 for real.
    let scheme4 = FtcScheme::build(&g, &Params::deterministic(4)).expect("build");
    let l4 = scheme4.labels();
    let isolate = l4
        .session([
            l4.edge_label(0, 1).unwrap(),
            l4.edge_label(0, 4).unwrap(),
            l4.edge_label(0, 12).unwrap(),
            l4.edge_label(0, 3).unwrap(),
        ])
        .unwrap();
    let ok = isolate
        .connected(l4.vertex_label(0), l4.vertex_label(10))
        .unwrap();
    println!("0 ↔ 10 with vertex 0 fully cut off: connected = {ok}");
    assert!(!ok);
    let ok = isolate
        .connected(l4.vertex_label(5), l4.vertex_label(10))
        .unwrap();
    println!("5 ↔ 10 with the same faults: connected = {ok}");
    assert!(ok);
}

//! `ftc-cli` — build, export, inspect, and query fault-tolerant
//! connectivity label archives from the command line.
//!
//! ```text
//! ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling]
//!               [--k N] [--encoding full|compact] [--threads N]
//! ftc-cli info  <labels.ftc>
//! ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]
//! ```
//!
//! `graph.txt` is an edge list: one `u v` pair per line (`#` comments
//! allowed); vertex IDs are dense non-negative integers. `build` exports
//! every label into a **single archive blob** (`ftc-core::store`
//! format: magic, version, header, offset/endpoint index, concatenated
//! label bytes). `query` answers connectivity **from the archive
//! alone** — the archive is opened zero-copy, faults are resolved
//! through its endpoint index, and no owned label is ever materialized;
//! the original graph file is never re-read.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, HierarchyBackend, Params, QuerySession, ThresholdPolicy};
use ftc::graph::Graph;
use std::fs;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling] [--k N] [--encoding full|compact] [--threads N]\n  ftc-cli info  <labels.ftc>\n  ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]".into()
}

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [graph_path, out_path] = positional.as_slice() else {
        return Err(usage());
    };
    let f: usize = flag_value(&flags, "f")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| "--f expects an integer")?;
    let backend = match flag_value(&flags, "backend").as_deref() {
        None | Some("epsnet") => HierarchyBackend::EpsNet,
        Some("greedy") => HierarchyBackend::GreedyRect,
        Some("sampling") => HierarchyBackend::Sampling { seed: 0xC11 },
        Some(other) => return Err(format!("unknown backend '{other}'")),
    };
    let mut params = Params {
        f,
        backend,
        threshold: ThresholdPolicy::Theory,
    };
    if let Some(k) = flag_value(&flags, "k") {
        let k: usize = k.parse().map_err(|_| "--k expects an integer")?;
        params.threshold = ThresholdPolicy::Fixed(k);
    }
    let encoding = match flag_value(&flags, "encoding").as_deref() {
        None | Some("full") => EdgeEncoding::Full,
        Some("compact") => EdgeEncoding::Compact,
        Some(other) => return Err(format!("unknown encoding '{other}'")),
    };
    let threads: usize = flag_value(&flags, "threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--threads expects an integer (0 = one per core)")?;

    let g = read_graph(Path::new(graph_path))?;
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    let scheme = FtcScheme::builder(&g)
        .params(&params)
        .threads(threads)
        .build()
        .map_err(|e| e.to_string())?;
    let size = scheme.size_report();
    eprintln!(
        "labels built: k = {}, {} levels, {} bits/vertex, {} bits/edge",
        size.k, size.levels, size.vertex_bits, size.edge_bits
    );

    let blob = LabelStore::to_vec(scheme.labels(), encoding);
    fs::write(out_path, &blob).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "wrote {} byte archive ({} vertices, {} edges) to {out_path}",
        blob.len(),
        g.n(),
        g.m()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err(usage()) };
    let blob = read_archive_bytes(path)?;
    let view = LabelStoreView::open(&blob).map_err(|e| format!("{path}: {e}"))?;
    let header = view.header();
    let (k, levels) = view.edge_by_id(0).map_or((0, 0), |e| (e.k(), e.levels()));
    print!(
        "n {}\nm {}\nf {}\nk {k}\nlevels {levels}\nencoding {}\narchive_bytes {}\n",
        view.n(),
        view.m(),
        header.f,
        match view.encoding() {
            EdgeEncoding::Full => "full",
            EdgeEncoding::Compact => "compact",
        },
        view.archive_bytes()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [path, s_str, t_str] = positional.as_slice() else {
        return Err(usage());
    };
    let s: usize = s_str.parse().map_err(|_| "s must be a vertex ID")?;
    let t: usize = t_str.parse().map_err(|_| "t must be a vertex ID")?;

    let blob = read_archive_bytes(path)?;
    let view = LabelStoreView::open(&blob).map_err(|e| format!("{path}: {e}"))?;

    let parse_pair = |flag: &str, spec: &String| -> Result<(usize, usize), String> {
        let (u, v) = spec
            .split_once(':')
            .ok_or_else(|| format!("--{flag} expects U:V, got '{spec}'"))?;
        let u: usize = u.parse().map_err(|_| format!("bad --{flag} endpoint"))?;
        let v: usize = v.parse().map_err(|_| format!("bad --{flag} endpoint"))?;
        Ok((u, v))
    };
    let mut fault_pairs = Vec::new();
    for spec in flags.iter().filter(|(k, _)| k == "fault").map(|(_, v)| v) {
        let (u, v) = parse_pair("fault", spec)?;
        // Resolve eagerly: an unknown fault edge is an error even when
        // every query pair turns out to answer trivially.
        if view.edge_id(u, v).is_none() {
            return Err(format!("no edge {u}–{v} in the archived labeling"));
        }
        fault_pairs.push((u, v));
    }
    // The positional pair plus any number of extra --pair queries, all
    // answered against one prepared session.
    let mut query_pairs = vec![(s, t)];
    for spec in flags.iter().filter(|(k, _)| k == "pair").map(|(_, v)| v) {
        query_pairs.push(parse_pair("pair", spec)?);
    }

    let resolve = |v: usize| {
        view.vertex(v)
            .ok_or_else(|| format!("vertex {v} out of range"))
    };
    let vertex_pairs = query_pairs
        .iter()
        .map(|&(a, b)| Ok((resolve(a)?, resolve(b)?)))
        .collect::<Result<Vec<_>, String>>()?;

    // Trivial queries answer before fault-budget enforcement (the
    // decoder's historical check order); the remaining pairs share one
    // session build and one batched lookup pass.
    let mut answers: Vec<Option<bool>> = Vec::with_capacity(vertex_pairs.len());
    let mut nontrivial = Vec::new();
    for &(vs, vt) in &vertex_pairs {
        let trivial = QuerySession::trivial_answer(&vs, &vt).map_err(|e| e.to_string())?;
        if trivial.is_none() {
            nontrivial.push((vs, vt));
        }
        answers.push(trivial);
    }
    if !nontrivial.is_empty() {
        // One-shot command: the plain entry point (throwaway scratch
        // internally) is the right call; scratch reuse pays off in
        // serving loops, not here.
        let session = view
            .session(fault_pairs.iter().copied())
            .map_err(|e| e.to_string())?;
        let mut batch = Vec::with_capacity(nontrivial.len());
        session
            .connected_many(&nontrivial, &mut batch)
            .map_err(|e| e.to_string())?;
        let mut it = batch.into_iter();
        for slot in answers.iter_mut().filter(|a| a.is_none()) {
            *slot = it.next();
        }
    }

    for (&(a, b), answer) in query_pairs.iter().zip(&answers) {
        let verdict = if answer.expect("all pairs answered") {
            "connected"
        } else {
            "disconnected"
        };
        if query_pairs.len() == 1 {
            println!("{verdict}");
        } else {
            println!("{a} {b}: {verdict}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn read_archive_bytes(path: &str) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("cannot read archive {path}: {e}"))
}

/// Parsed command line: positional arguments and `--name value` flags.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

fn split_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or(format!("--{name} expects a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_value(flags: &[(String, String)], name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn read_graph(path: &Path) -> Result<Graph, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or(format!("line {}: expected 'u v'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex ID", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err("graph file has no edges".into());
    }
    Ok(Graph::from_edges(max_v + 1, &edges))
}

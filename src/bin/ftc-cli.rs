//! `ftc-cli` — build, export, inspect, and query fault-tolerant
//! connectivity label archives from the command line.
//!
//! ```text
//! ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling]
//!               [--k N] [--encoding full|compact] [--threads N] [--compress]
//! ftc-cli info  <labels.ftc>
//! ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]
//! ftc-cli update <labels.ftc> <ops.txt> [--out PATH] [--seed N] [--journal] [--fsync P]
//! ftc-cli recover <labels.ftc> [--journal PATH] [--seed N] [--fsync P]
//! ftc-cli serve <labels.ftc> [--threads N] [--tcp HOST:PORT] [--id NAME]
//! ftc-cli compress   <labels.ftc> <labels.ftcz>
//! ftc-cli decompress <labels.ftcz> <labels.ftc>
//! ```
//!
//! `graph.txt` is an edge list: one `u v` pair per line (`#` comments
//! allowed); vertex IDs are dense non-negative integers. `build` exports
//! every label into a **single archive blob** (`ftc-core::store`
//! format: magic, version, header, offset/endpoint index, concatenated
//! label bytes). `query` and `serve` answer connectivity **from the
//! archive alone** through a shared [`ConnectivityService`] — the
//! archive is opened zero-copy into `Arc`-backed views, faults are
//! resolved through its endpoint index, and no owned label is ever
//! materialized; the original graph file is never re-read.
//!
//! `serve` reads line-delimited queries from stdin — each line
//! `s t [u:v ...]` names one vertex pair plus its fault edges (the
//! grammar is `ftc::net::text`, shared with the TCP client's text-mode
//! tooling) — and writes one `u v connected|disconnected` line per
//! query to stdout. With `--threads N` the whole input is read first
//! and answered by `N` worker threads hammering one shared service
//! (answers stay in input order); without it, queries stream one at a
//! time. With `--tcp HOST:PORT` the archive is served over the binary
//! TCP protocol instead (registered under `--id`, default `default`)
//! until SIGINT/SIGTERM drains in-flight requests.
//!
//! Every command accepts **both archive formats** transparently: the v1
//! single blob and the v2 compressed container (`ftc::core::compressed`,
//! built by `build --compress` or `compress`). Archives are opened
//! memory-mapped where the platform allows; v2 archives open in
//! O(header) time and decode sections lazily on first touch, and `info`
//! reports the per-section raw/stored sizes and overall ratio straight
//! from the section table without decoding any payload. v1 archives get
//! the same per-region breakdown (endpoint index, vertex labels, edge
//! metadata, per-level payload rows) computed from the blob layout.
//!
//! `update` applies a batch of edge insertions (`+u v` or `+u:v`) and
//! deletions (`-u v` / `-u:v`) to an existing archive through `ftc-dyn`'s incremental
//! maintenance and writes the re-committed archive back — no graph file
//! and no from-scratch rebuild. With `--journal`, every op is
//! write-ahead journaled into a `.ftcj` sidecar before it is applied
//! (fsync per `--fsync every_op|every_n:N|on_commit`, default
//! `every_op`) and the final archive is a crash-consistent checkpoint;
//! `recover` replays whatever journal suffix a crash left behind and
//! reseals the archive.
//!
//! Every archive-producing command writes through
//! [`ftc::core::io::AtomicFile`] (tempfile → fsync → rename →
//! directory fsync): an interrupted run can never leave a torn archive
//! at the output path, and a live `ftc-server` reloading the path on
//! SIGHUP always opens a complete generation.

use ftc::core::compressed::AnyArchive;
use ftc::core::io::{write_file_atomic, StdVfs};
use ftc::core::store::{EdgeEncoding, LabelStoreView};
use ftc::core::{FtcScheme, HierarchyBackend, Params, StoreOpenError, ThresholdPolicy};
use ftc::graph::Graph;
use ftc::net::server::{install_signal_shutdown, Server, ServerConfig};
use ftc::net::text;
use ftc::serve::{ConnectivityService, ServiceRegistry};
use std::fmt;
use std::fs;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Typed top-level CLI failure, mapped to an exit status in `main`.
enum CliError {
    /// Bad invocation; print the usage text (exit status 2).
    Usage,
    /// A `serve --threads` worker thread panicked; partial answers were
    /// discarded rather than emitted out of order.
    WorkerPanicked,
    /// Any other failure, already formatted for the user.
    Msg(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage => f.write_str(USAGE),
            CliError::WorkerPanicked => {
                f.write_str("serve worker panicked; partial answers discarded")
            }
            CliError::Msg(m) => f.write_str(m),
        }
    }
}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Msg(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Msg(m.into())
    }
}

type CliResult = Result<(), CliError>;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("update") => cmd_update(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("compress") => cmd_compress(&args[1..]),
        Some("decompress") => cmd_decompress(&args[1..]),
        _ => Err(CliError::Usage),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage) => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:\n  ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling] [--k N] [--encoding full|compact] [--threads N] [--compress]\n  ftc-cli info  <labels.ftc>\n  ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]\n  ftc-cli update <labels.ftc> <ops.txt> [--out PATH] [--seed N] [--journal] [--fsync every_op|every_n:N|on_commit]   (ops `+u v` / `-u v`, one per line)\n  ftc-cli recover <labels.ftc> [--journal PATH] [--seed N] [--fsync P]   (replay the journal a crash left behind)\n  ftc-cli serve <labels.ftc> [--threads N] [--tcp HOST:PORT] [--id NAME]   (queries `s t [u:v ...]` on stdin)\n  ftc-cli compress   <labels.ftc> <labels.ftcz>\n  ftc-cli decompress <labels.ftcz> <labels.ftc>";

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

fn cmd_build(args: &[String]) -> CliResult {
    let (positional, flags) = split_flags(args, &["compress"])?;
    let [graph_path, out_path] = positional.as_slice() else {
        return Err(CliError::Usage);
    };
    let f: usize = flag_value(&flags, "f")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| "--f expects an integer")?;
    let backend = match flag_value(&flags, "backend").as_deref() {
        None | Some("epsnet") => HierarchyBackend::EpsNet,
        Some("greedy") => HierarchyBackend::GreedyRect,
        Some("sampling") => HierarchyBackend::Sampling { seed: 0xC11 },
        Some(other) => return Err(format!("unknown backend '{other}'").into()),
    };
    let mut params = Params {
        f,
        backend,
        threshold: ThresholdPolicy::Theory,
    };
    if let Some(k) = flag_value(&flags, "k") {
        let k: usize = k.parse().map_err(|_| "--k expects an integer")?;
        params.threshold = ThresholdPolicy::Fixed(k);
    }
    let encoding = match flag_value(&flags, "encoding").as_deref() {
        None | Some("full") => EdgeEncoding::Full,
        Some("compact") => EdgeEncoding::Compact,
        Some(other) => return Err(format!("unknown encoding '{other}'").into()),
    };
    let threads: usize = flag_value(&flags, "threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--threads expects an integer (0 = one per core)")?;

    let g = read_graph(Path::new(graph_path))?;
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    // Stream the build straight into the archive: worker threads write
    // each label's payload into its final blob position, so the labeling
    // is never held twice in memory (the blob is byte-identical to
    // build-then-serialize). With --compress, each level's rows run
    // through the transform + entropy pipeline as soon as the level
    // completes, and the v2 container is assembled at the end.
    let builder = FtcScheme::builder(&g).params(&params).threads(threads);
    let (bytes, diag, kind) = if flag_present(&flags, "compress") {
        let (store, diag) = builder
            .build_store_compressed(encoding)
            .map_err(|e| e.to_string())?;
        (store.into_vec(), diag, "compressed archive")
    } else {
        let (store, diag) = builder.build_store(encoding).map_err(|e| e.to_string())?;
        (store.into_vec(), diag, "archive")
    };
    eprintln!("labels built: k = {}, {} levels", diag.k, diag.levels);

    write_file_atomic(Path::new(out_path), &bytes)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "wrote {} byte {kind} ({} vertices, {} edges) to {out_path}",
        bytes.len(),
        g.n(),
        g.m()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

fn cmd_info(args: &[String]) -> CliResult {
    let [path] = args else {
        return Err(CliError::Usage);
    };
    let archive = open_any(path)?;
    let header = archive.header();
    let encoding = match archive.encoding() {
        EdgeEncoding::Full => "full",
        EdgeEncoding::Compact => "compact",
    };
    match archive {
        AnyArchive::V1(view) => {
            let (k, levels) = view.edge_by_id(0).map_or((0, 0), |e| (e.k(), e.levels()));
            print!(
                "n {}\nm {}\nf {}\nk {k}\nlevels {levels}\nencoding {encoding}\nformat v1\narchive_bytes {}\n",
                view.n(),
                view.m(),
                header.f,
                view.archive_bytes()
            );
            // Same per-region byte breakdown the v2 section table gets —
            // for v1 the stored size equals the raw size, so one number
            // per line suffices.
            for s in view.sections() {
                println!("section {} raw {}", section_name(&s), s.raw_len);
            }
        }
        AnyArchive::V2(view) => {
            // Everything below reads the prologue and section table only
            // (O(header) on the mmap); no payload is decoded.
            print!(
                "n {}\nm {}\nf {}\nk {}\nlevels {}\nencoding {encoding}\nformat v2-compressed\narchive_bytes {}\nv1_bytes {}\nratio {:.2}\n",
                view.n(),
                view.m(),
                header.f,
                view.k(),
                view.levels(),
                view.archive_bytes(),
                view.v1_len(),
                view.v1_len() as f64 / view.archive_bytes() as f64,
            );
            for s in view.sections() {
                println!(
                    "section {} raw {} stored {}",
                    section_name(&s),
                    s.raw_len,
                    s.comp_len
                );
            }
        }
    }
    Ok(())
}

/// `kind[level]` display name of a section-table row (both formats).
fn section_name(s: &ftc::core::SectionInfo) -> String {
    match s.level {
        Some(level) => format!("{}[{level}]", s.kind.name()),
        None => s.kind.name().to_string(),
    }
}

// ---------------------------------------------------------------------------
// update
// ---------------------------------------------------------------------------

/// Applies a batch of edge insertions/deletions to an on-disk archive
/// through `ftc-dyn`'s incremental maintenance: the archive is adopted
/// into a [`DynamicScheme`](ftc::dyn_::DynamicScheme), each op patches
/// only the labels it invalidates, and a freshly committed archive is
/// written back (in place unless `--out` redirects it; a `.ftcz` output
/// path selects the v2 compressed container). Both input formats are
/// accepted; v2 inputs are expanded to their v1 bytes first.
///
/// With `--journal` the batch runs through a
/// [`DurableScheme`](ftc::dyn_::DurableScheme): the input state is
/// checkpointed at the output path first, every op is write-ahead
/// journaled into `<out>.ftcj` before it is applied, and the final
/// archive is a crash-consistent checkpoint — kill the process at any
/// byte and `ftc-cli recover` loses no acknowledged op.
fn cmd_update(args: &[String]) -> CliResult {
    use ftc::dyn_::{default_journal_path, DurableScheme, DynamicScheme, FsyncPolicy};

    let (positional, flags) = split_flags(args, &["journal"])?;
    let [archive_path, ops_path] = positional.as_slice() else {
        return Err(CliError::Usage);
    };
    let out_path = flag_value(&flags, "out").unwrap_or_else(|| archive_path.clone());
    let seed: u64 = flag_value(&flags, "seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed expects an integer")?;
    let ops_text =
        fs::read_to_string(ops_path).map_err(|e| format!("cannot read {ops_path}: {e}"))?;
    let ops = parse_ops(&ops_text)?;

    let mut scheme = match open_any(archive_path)? {
        AnyArchive::V1(view) => DynamicScheme::from_archive(&view, seed),
        AnyArchive::V2(view) => {
            let blob = view
                .to_v1_vec()
                .map_err(|e| format!("{archive_path}: {e}"))?;
            let v = LabelStoreView::open(&blob).map_err(|e| format!("{archive_path}: {e}"))?;
            DynamicScheme::from_archive(&v, seed)
        }
    }
    .map_err(|e| format!("cannot maintain {archive_path}: {e}"))?;

    if flag_present(&flags, "journal") {
        if out_path.ends_with(".ftcz") {
            return Err("--journal requires a v1 output archive (not .ftcz)".into());
        }
        let policy: FsyncPolicy = flag_value(&flags, "fsync")
            .unwrap_or_else(|| "every_op".into())
            .parse()
            .map_err(CliError::Msg)?;
        let journal_path = default_journal_path(Path::new(&out_path));
        let mut durable = DurableScheme::create(
            Arc::new(StdVfs),
            Path::new(&out_path),
            &journal_path,
            scheme,
            policy,
        )
        .map_err(|e| format!("cannot journal {out_path}: {e}"))?;
        for &(lineno, insert, u, v) in &ops {
            let sign = if insert { '+' } else { '-' };
            (if insert {
                durable.insert_edge(u, v)
            } else {
                durable.delete_edge(u, v)
            })
            .map_err(|e| format!("{ops_path}:{lineno}: {sign}{u} {v}: {e}"))?;
        }
        let stats = durable.stats();
        let watermark = durable
            .commit()
            .map_err(|e| format!("cannot commit {out_path}: {e}"))?;
        println!(
            "applied {} ops ({} incremental, {} rebuilds); committed watermark {watermark} to {out_path} (journal {}, fsync {policy})",
            ops.len(),
            stats.incremental_ops,
            stats.structural_rebuilds + stats.slot_rebuilds,
            journal_path.display()
        );
        return Ok(());
    }
    if flag_present(&flags, "fsync") {
        return Err("--fsync only applies with --journal".into());
    }

    for &(lineno, insert, u, v) in &ops {
        let sign = if insert { '+' } else { '-' };
        (if insert {
            scheme.insert_edge(u, v)
        } else {
            scheme.delete_edge(u, v)
        })
        .map_err(|e| format!("{ops_path}:{lineno}: {sign}{u} {v}: {e}"))?;
    }
    let stats = scheme.stats();

    let bytes = if out_path.ends_with(".ftcz") {
        scheme.commit_compressed().into_vec()
    } else {
        scheme.commit().into_vec()
    };
    write_file_atomic(Path::new(&out_path), &bytes)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "applied {} ops ({} incremental, {} rebuilds); wrote {} byte archive ({} vertices, {} edges) to {out_path}",
        ops.len(),
        stats.incremental_ops,
        stats.structural_rebuilds + stats.slot_rebuilds,
        bytes.len(),
        scheme.n(),
        scheme.m()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// recover
// ---------------------------------------------------------------------------

/// Replays the write-ahead journal a crash left next to `labels.ftc`:
/// opens whatever archive generation survived (the atomic writer
/// guarantees it is complete), replays the journal suffix past the
/// manifest watermark, and reseals — recovered archive, fresh manifest,
/// rotated journal. `--seed` must match the `update --journal` run that
/// produced the journal (both default to 0).
fn cmd_recover(args: &[String]) -> CliResult {
    use ftc::dyn_::{default_journal_path, DurableScheme, FsyncPolicy};
    use std::path::PathBuf;

    let (positional, flags) = split_flags(args, &[])?;
    let [archive_path] = positional.as_slice() else {
        return Err(CliError::Usage);
    };
    if archive_path.ends_with(".ftcz") {
        return Err("journaled durability covers v1 archives only (not .ftcz)".into());
    }
    let seed: u64 = flag_value(&flags, "seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed expects an integer")?;
    let policy: FsyncPolicy = flag_value(&flags, "fsync")
        .unwrap_or_else(|| "every_op".into())
        .parse()
        .map_err(CliError::Msg)?;
    let journal_path = flag_value(&flags, "journal")
        .map(PathBuf::from)
        .unwrap_or_else(|| default_journal_path(Path::new(archive_path)));

    let (durable, stats) = DurableScheme::recover(
        Arc::new(StdVfs),
        Path::new(archive_path),
        &journal_path,
        seed,
        policy,
    )
    .map_err(|e| format!("cannot recover {archive_path}: {e}"))?;
    println!(
        "recovered {archive_path}: watermark {}, {} journal records ({} replayed, {} skipped, {} tolerated, {} rebuilds{}); resealed at seq {} ({} vertices, {} edges)",
        stats.watermark,
        stats.records,
        stats.replayed,
        stats.skipped,
        stats.tolerated,
        stats.rebuild_markers,
        if stats.torn_tail { ", torn tail truncated" } else { "" },
        stats.end_seq,
        durable.scheme().n(),
        durable.scheme().m()
    );
    Ok(())
}

/// Parses the update ops grammar: one `+u v` (insert) or `-u v` (delete)
/// per line, whitespace after the sign optional, `#` comments allowed.
/// Returns `(line number, is_insert, u, v)` triples in file order.
fn parse_ops(text: &str) -> Result<Vec<(usize, bool, usize, usize)>, String> {
    let mut ops = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (insert, rest) = if let Some(rest) = line.strip_prefix('+') {
            (true, rest)
        } else if let Some(rest) = line.strip_prefix('-') {
            (false, rest)
        } else {
            return Err(format!("line {lineno}: expected '+u v' or '-u v'"));
        };
        // Endpoints separate with whitespace or ':' — `+0 4` and `+0:4`
        // are the same op (the latter matches the query `--fault U:V`
        // syntax).
        let mut it = rest
            .split(|c: char| c.is_whitespace() || c == ':')
            .filter(|tok| !tok.is_empty());
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or(format!(
                "line {lineno}: expected '{}u v' or '{}u:v'",
                if insert { '+' } else { '-' },
                if insert { '+' } else { '-' }
            ))?
            .parse()
            .map_err(|_| format!("line {lineno}: bad vertex ID"))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        if it.next().is_some() {
            return Err(format!("line {lineno}: trailing tokens after '{u} {v}'"));
        }
        ops.push((lineno, insert, u, v));
    }
    if ops.is_empty() {
        return Err("ops file has no operations".into());
    }
    Ok(ops)
}

// ---------------------------------------------------------------------------
// compress / decompress
// ---------------------------------------------------------------------------

/// Transcodes a v1 archive into the v2 compressed container. The
/// conversion is lossless: `decompress` recovers the v1 blob
/// byte-identically.
fn cmd_compress(args: &[String]) -> CliResult {
    let [in_path, out_path] = args else {
        return Err(CliError::Usage);
    };
    let blob = read_archive_bytes(in_path)?;
    let view = LabelStoreView::open(&blob).map_err(|e| format!("{in_path}: {e}"))?;
    let store = ftc::core::compressed::compress_archive(&view);
    write_file_atomic(Path::new(out_path), store.as_bytes())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "wrote {} byte compressed archive ({:.2}x) to {out_path}",
        store.as_bytes().len(),
        blob.len() as f64 / store.as_bytes().len() as f64
    );
    Ok(())
}

/// Expands a v2 compressed container back to the byte-identical v1 blob.
fn cmd_decompress(args: &[String]) -> CliResult {
    let [in_path, out_path] = args else {
        return Err(CliError::Usage);
    };
    let AnyArchive::V2(view) = open_any(in_path)? else {
        return Err(format!("{in_path}: already a v1 archive").into());
    };
    let blob = view.to_v1_vec().map_err(|e| format!("{in_path}: {e}"))?;
    write_file_atomic(Path::new(out_path), &blob)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!("wrote {} byte archive to {out_path}", blob.len());
    Ok(())
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> CliResult {
    let (positional, flags) = split_flags(args, &[])?;
    let [path, s_str, t_str] = positional.as_slice() else {
        return Err(CliError::Usage);
    };
    let s: usize = s_str.parse().map_err(|_| "s must be a vertex ID")?;
    let t: usize = t_str.parse().map_err(|_| "t must be a vertex ID")?;

    let service = open_service(path)?;

    let mut fault_pairs = Vec::new();
    for spec in flags.iter().filter(|(k, _)| k == "fault").map(|(_, v)| v) {
        fault_pairs.push(parse_colon_pair("fault", spec)?);
    }
    // The positional pair plus any number of extra --pair queries, all
    // answered against one prepared session. The service validates
    // faults eagerly (unknown fault edges error even when every pair is
    // trivial) and answers trivial pairs before budget enforcement.
    let mut query_pairs = vec![(s, t)];
    for spec in flags.iter().filter(|(k, _)| k == "pair").map(|(_, v)| v) {
        query_pairs.push(parse_colon_pair("pair", spec)?);
    }

    let answers = service
        .query(&fault_pairs, &query_pairs)
        .map_err(|e| e.to_string())?;
    for (&(a, b), answer) in query_pairs.iter().zip(&answers) {
        let verdict = text::verdict(answer);
        if query_pairs.len() == 1 {
            println!("{verdict}");
        } else {
            println!("{a} {b}: {verdict}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

fn cmd_serve(args: &[String]) -> CliResult {
    let (positional, flags) = split_flags(args, &[])?;
    let [path] = positional.as_slice() else {
        return Err(CliError::Usage);
    };
    let threads: usize = flag_value(&flags, "threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--threads expects an integer (0 = stream on this thread)")?;

    if let Some(addr) = flag_value(&flags, "tcp") {
        let id = flag_value(&flags, "id").unwrap_or_else(|| "default".into());
        return serve_tcp(path, &addr, &id);
    }

    let service = open_service(path)?;

    let stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let report = |out: &mut dyn Write, q: &text::TextQuery, connected: bool| -> CliResult {
        writeln!(out, "{}", text::answer_line(q.s, q.t, connected))
            .map_err(|e| format!("cannot write: {e}").into())
    };

    if threads <= 1 {
        // Streaming mode: answer each line as it arrives.
        for line in stdin.lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            let Some(q) = text::parse_query_line(&line).map_err(|e| e.to_string())? else {
                continue;
            };
            let answers = service
                .query(&q.faults, &[(q.s, q.t)])
                .map_err(|e| format!("query '{} {}': {e}", q.s, q.t))?;
            report(&mut stdout, &q, answers.get(0).expect("one answer"))?;
            stdout.flush().map_err(|e| format!("cannot write: {e}"))?;
        }
        return Ok(());
    }

    // Batch mode: read everything, fan out over one shared service,
    // answer in input order.
    let queries = stdin
        .lines()
        .map(|line| {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            text::parse_query_line(&line).map_err(|e| e.to_string())
        })
        .filter_map(Result::transpose)
        .collect::<Result<Vec<_>, String>>()?;
    let chunk = queries.len().div_ceil(threads).max(1);
    // Each worker answers one input-order chunk; a panicking worker
    // surfaces as a typed error instead of tearing down the process
    // mid-output.
    let answers: Vec<Result<bool, String>> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|q| {
                            service
                                .query(&q.faults, &[(q.s, q.t)])
                                .map(|a| a.get(0).expect("one answer"))
                                .map_err(|e| format!("query '{} {}': {e}", q.s, q.t))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| CliError::WorkerPanicked))
            .collect::<Result<Vec<_>, CliError>>()
            .map(|chunks| chunks.into_iter().flatten().collect())
    })?;
    for (q, answer) in queries.iter().zip(answers) {
        report(&mut stdout, q, answer?)?;
    }
    stdout.flush().map_err(|e| format!("cannot write: {e}"))?;
    Ok(())
}

/// Serves the archive over the binary TCP protocol (`ftc::net`) until
/// SIGINT/SIGTERM, which drain in-flight requests before exiting.
fn serve_tcp(path: &str, addr: &str, id: &str) -> CliResult {
    let registry = Arc::new(ServiceRegistry::new());
    let service = registry.open_path(id, path).map_err(|e| e.to_string())?;
    eprintln!(
        "registered \"{id}\": n = {}, m = {} ({path})",
        service.n(),
        service.m()
    );
    let server = Server::bind(registry, addr, ServerConfig::default())
        .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let handle = server.handle();
    install_signal_shutdown(handle.clone());
    println!("listening on {}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot write: {e}"))?;
    server.run().map_err(|e| format!("serving failed: {e}"))?;
    let stats = handle.stats();
    eprintln!(
        "drained: {} requests ({} coalesced) in {} batches, {} pairs answered",
        stats.requests, stats.coalesced, stats.batches, stats.pairs
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn read_archive_bytes(path: &str) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("cannot read archive {path}: {e}"))
}

/// Opens an archive file of either format, memory-mapped where the
/// platform allows, with CLI-shaped error messages.
fn open_any(path: &str) -> Result<AnyArchive, String> {
    ftc::core::compressed::open_path(path).map_err(|e| match e {
        StoreOpenError::Io(err) => format!("cannot read archive {path}: {err}"),
        StoreOpenError::Malformed(e) => format!("{path}: {e}"),
    })
}

/// Opens an archive file as a shared, thread-safe connectivity service
/// (either format, memory-mapped).
fn open_service(path: &str) -> Result<ConnectivityService, String> {
    ConnectivityService::open_path(path).map_err(|e| match e {
        StoreOpenError::Io(err) => format!("cannot read archive {path}: {err}"),
        StoreOpenError::Malformed(e) => format!("{path}: {e}"),
    })
}

/// Parses a `U:V` endpoint pair (shared `ftc::net::text` syntax, with
/// the flag name in the error).
fn parse_colon_pair(what: &str, spec: &str) -> Result<(usize, usize), String> {
    text::parse_endpoint_pair(spec).map_err(|_| format!("--{what} expects U:V, got '{spec}'"))
}

/// Parsed command line: positional arguments and `--name value` flags.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

/// Splits `args` into positionals and flags; names in `bool_flags` take
/// no value and parse to a `("name", "")` entry.
fn split_flags(args: &[String], bool_flags: &[&str]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            if bool_flags.contains(&name) {
                flags.push((name.to_string(), String::new()));
                continue;
            }
            let value = it.next().ok_or(format!("--{name} expects a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_present(flags: &[(String, String)], name: &str) -> bool {
    flags.iter().any(|(k, _)| k == name)
}

fn flag_value(flags: &[(String, String)], name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn read_graph(path: &Path) -> Result<Graph, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or(format!("line {}: expected 'u v'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex ID", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err("graph file has no edges".into());
    }
    Ok(Graph::from_edges(max_v + 1, &edges))
}

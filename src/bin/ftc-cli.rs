//! `ftc-cli` — build, store, inspect, and query fault-tolerant
//! connectivity labelings from the command line.
//!
//! ```text
//! ftc-cli build <graph.txt> <outdir> [--f N] [--backend epsnet|greedy|sampling] [--k N]
//! ftc-cli info  <outdir>
//! ftc-cli query <outdir> <s> <t> [--fault U:V ...]
//! ```
//!
//! `graph.txt` is an edge list: one `u v` pair per line (`#` comments
//! allowed); vertex IDs are dense non-negative integers. `build` writes the
//! serialized labels into `<outdir>`; `query` answers connectivity **from
//! the stored labels alone** — it never re-reads the graph.

use ftc::core::serial::{edge_to_bytes, vertex_to_bytes, EdgeLabelView, VertexLabelView};
use ftc::core::{
    FtcScheme, HierarchyBackend, Params, QuerySession, ThresholdPolicy, VertexLabelRead,
};
use ftc::graph::Graph;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  ftc-cli build <graph.txt> <outdir> [--f N] [--backend epsnet|greedy|sampling] [--k N]\n  ftc-cli info  <outdir>\n  ftc-cli query <outdir> <s> <t> [--fault U:V ...]".into()
}

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [graph_path, outdir] = positional.as_slice() else {
        return Err(usage());
    };
    let f: usize = flag_value(&flags, "f")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| "--f expects an integer")?;
    let backend = match flag_value(&flags, "backend").as_deref() {
        None | Some("epsnet") => HierarchyBackend::EpsNet,
        Some("greedy") => HierarchyBackend::GreedyRect,
        Some("sampling") => HierarchyBackend::Sampling { seed: 0xC11 },
        Some(other) => return Err(format!("unknown backend '{other}'")),
    };
    let mut params = Params {
        f,
        backend,
        threshold: ThresholdPolicy::Theory,
    };
    if let Some(k) = flag_value(&flags, "k") {
        let k: usize = k.parse().map_err(|_| "--k expects an integer")?;
        params.threshold = ThresholdPolicy::Fixed(k);
    }

    let g = read_graph(Path::new(graph_path))?;
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    let scheme = FtcScheme::build(&g, &params).map_err(|e| e.to_string())?;
    let size = scheme.size_report();
    eprintln!(
        "labels built: k = {}, {} levels, {} bits/vertex, {} bits/edge",
        size.k, size.levels, size.vertex_bits, size.edge_bits
    );

    let out = PathBuf::from(outdir);
    fs::create_dir_all(&out).map_err(|e| format!("cannot create {outdir}: {e}"))?;
    let labels = scheme.labels();

    let mut vfile = Vec::new();
    write_framed(
        &mut vfile,
        (0..g.n()).map(|v| vertex_to_bytes(labels.vertex_label(v))),
    );
    fs::write(out.join("vertices.lbl"), vfile).map_err(|e| e.to_string())?;

    let mut efile = Vec::new();
    write_framed(
        &mut efile,
        (0..g.m()).map(|e| edge_to_bytes(labels.edge_label_by_id(e))),
    );
    fs::write(out.join("edges.lbl"), efile).map_err(|e| e.to_string())?;

    // Edge endpoint index (lets `query` resolve U:V fault syntax without
    // the original graph file).
    let mut idx = String::new();
    for (_, u, v) in g.edge_iter() {
        idx.push_str(&format!("{u} {v}\n"));
    }
    fs::write(out.join("edges.idx"), idx).map_err(|e| e.to_string())?;
    fs::write(
        out.join("meta.txt"),
        format!(
            "n {}\nm {}\nf {}\nk {}\nlevels {}\nvertex_bits {}\nedge_bits {}\n",
            g.n(),
            g.m(),
            f,
            size.k,
            size.levels,
            size.vertex_bits,
            size.edge_bits
        ),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "wrote labels for {} vertices and {} edges to {outdir}",
        g.n(),
        g.m()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [outdir] = args else { return Err(usage()) };
    let meta = fs::read_to_string(Path::new(outdir).join("meta.txt"))
        .map_err(|e| format!("cannot read {outdir}/meta.txt: {e}"))?;
    print!("{meta}");
    Ok(())
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [outdir, s_str, t_str] = positional.as_slice() else {
        return Err(usage());
    };
    let s: usize = s_str.parse().map_err(|_| "s must be a vertex ID")?;
    let t: usize = t_str.parse().map_err(|_| "t must be a vertex ID")?;
    let out = PathBuf::from(outdir);

    let vertices = read_framed(&out.join("vertices.lbl"))?;
    let edges = read_framed(&out.join("edges.lbl"))?;
    let idx = fs::read_to_string(out.join("edges.idx")).map_err(|e| e.to_string())?;
    let endpoints: Vec<(usize, usize)> = idx
        .lines()
        .map(|l| {
            let mut it = l.split_whitespace();
            Ok((
                it.next()
                    .ok_or("bad edges.idx")?
                    .parse()
                    .map_err(|_| "bad edges.idx")?,
                it.next()
                    .ok_or("bad edges.idx")?
                    .parse()
                    .map_err(|_| "bad edges.idx")?,
            ))
        })
        .collect::<Result<_, &str>>()?;

    // Zero-copy decoding: vertex and fault labels are read as validated
    // views straight over the stored bytes — nothing is deserialized.
    let get_vertex = |v: usize| -> Result<VertexLabelView, String> {
        VertexLabelView::new(vertices.get(v).ok_or(format!("vertex {v} out of range"))?)
            .map_err(|e| e.to_string())
    };
    let vs = get_vertex(s)?;
    let vt = get_vertex(t)?;

    let mut fault_views: Vec<EdgeLabelView> = Vec::new();
    for spec in flags.iter().filter(|(k, _)| k == "fault").map(|(_, v)| v) {
        let (u, v) = spec
            .split_once(':')
            .ok_or_else(|| format!("--fault expects U:V, got '{spec}'"))?;
        let u: usize = u.parse().map_err(|_| "bad fault endpoint")?;
        let v: usize = v.parse().map_err(|_| "bad fault endpoint")?;
        let e = endpoints
            .iter()
            .position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
            .ok_or_else(|| format!("no edge {u}:{v} in the labeling"))?;
        fault_views.push(EdgeLabelView::new(&edges[e]).map_err(|e| e.to_string())?);
    }
    // Trivial queries answer before fault-budget enforcement (the
    // decoder's historical check order).
    let ok = match QuerySession::trivial_answer(&vs, &vt).map_err(|e| e.to_string())? {
        Some(answer) => answer,
        None => {
            let session = QuerySession::new(vs.header(), fault_views).map_err(|e| e.to_string())?;
            session.connected(vs, vt).map_err(|e| e.to_string())?
        }
    };
    println!("{}", if ok { "connected" } else { "disconnected" });
    Ok(())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Parsed command line: positional arguments and `--name value` flags.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

fn split_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or(format!("--{name} expects a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_value(flags: &[(String, String)], name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn read_graph(path: &Path) -> Result<Graph, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or(format!("line {}: expected 'u v'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex ID", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err("graph file has no edges".into());
    }
    Ok(Graph::from_edges(max_v + 1, &edges))
}

/// Frame format: u32 count, then per entry u32 length + bytes (all LE).
fn write_framed<'a>(out: &mut Vec<u8>, entries: impl ExactSizeIterator<Item = Vec<u8>> + 'a) {
    out.write_all(&(entries.len() as u32).to_le_bytes())
        .unwrap();
    for e in entries {
        out.write_all(&(e.len() as u32).to_le_bytes()).unwrap();
        out.write_all(&e).unwrap();
    }
}

fn read_framed(path: &Path) -> Result<Vec<Vec<u8>>, String> {
    let mut file = fs::File::open(path).map_err(|e| format!("cannot open {path:?}: {e}"))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf).map_err(|e| e.to_string())?;
    let mut pos = 0usize;
    let take4 = |pos: &mut usize, buf: &[u8]| -> Result<u32, String> {
        let end = *pos + 4;
        if end > buf.len() {
            return Err(format!("{path:?}: truncated"));
        }
        let v = u32::from_le_bytes(buf[*pos..end].try_into().unwrap());
        *pos = end;
        Ok(v)
    };
    let count = take4(&mut pos, &buf)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = take4(&mut pos, &buf)? as usize;
        let end = pos + len;
        if end > buf.len() {
            return Err(format!("{path:?}: truncated entry"));
        }
        out.push(buf[pos..end].to_vec());
        pos = end;
    }
    Ok(out)
}

//! `ftc-cli` — build, export, inspect, and query fault-tolerant
//! connectivity label archives from the command line.
//!
//! ```text
//! ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling]
//!               [--k N] [--encoding full|compact] [--threads N]
//! ftc-cli info  <labels.ftc>
//! ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]
//! ftc-cli serve <labels.ftc> [--threads N]
//! ```
//!
//! `graph.txt` is an edge list: one `u v` pair per line (`#` comments
//! allowed); vertex IDs are dense non-negative integers. `build` exports
//! every label into a **single archive blob** (`ftc-core::store`
//! format: magic, version, header, offset/endpoint index, concatenated
//! label bytes). `query` and `serve` answer connectivity **from the
//! archive alone** through a shared [`ConnectivityService`] — the
//! archive is opened zero-copy into `Arc`-backed views, faults are
//! resolved through its endpoint index, and no owned label is ever
//! materialized; the original graph file is never re-read.
//!
//! `serve` reads line-delimited queries from stdin — each line
//! `s t [u:v ...]` names one vertex pair plus its fault edges — and
//! writes one `u v connected|disconnected` line per query to stdout.
//! With `--threads N` the whole input is read first and answered by `N`
//! worker threads hammering one shared service (answers stay in input
//! order); without it, queries stream one at a time.

use ftc::core::store::{EdgeEncoding, LabelStoreView};
use ftc::core::{FtcScheme, HierarchyBackend, Params, ThresholdPolicy};
use ftc::graph::Graph;
use ftc::serve::ConnectivityService;
use std::fs;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage:\n  ftc-cli build <graph.txt> <labels.ftc> [--f N] [--backend epsnet|greedy|sampling] [--k N] [--encoding full|compact] [--threads N]\n  ftc-cli info  <labels.ftc>\n  ftc-cli query <labels.ftc> <s> <t> [--fault U:V ...] [--pair S:T ...]\n  ftc-cli serve <labels.ftc> [--threads N]   (queries `s t [u:v ...]` on stdin)".into()
}

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [graph_path, out_path] = positional.as_slice() else {
        return Err(usage());
    };
    let f: usize = flag_value(&flags, "f")
        .unwrap_or_else(|| "2".into())
        .parse()
        .map_err(|_| "--f expects an integer")?;
    let backend = match flag_value(&flags, "backend").as_deref() {
        None | Some("epsnet") => HierarchyBackend::EpsNet,
        Some("greedy") => HierarchyBackend::GreedyRect,
        Some("sampling") => HierarchyBackend::Sampling { seed: 0xC11 },
        Some(other) => return Err(format!("unknown backend '{other}'")),
    };
    let mut params = Params {
        f,
        backend,
        threshold: ThresholdPolicy::Theory,
    };
    if let Some(k) = flag_value(&flags, "k") {
        let k: usize = k.parse().map_err(|_| "--k expects an integer")?;
        params.threshold = ThresholdPolicy::Fixed(k);
    }
    let encoding = match flag_value(&flags, "encoding").as_deref() {
        None | Some("full") => EdgeEncoding::Full,
        Some("compact") => EdgeEncoding::Compact,
        Some(other) => return Err(format!("unknown encoding '{other}'")),
    };
    let threads: usize = flag_value(&flags, "threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--threads expects an integer (0 = one per core)")?;

    let g = read_graph(Path::new(graph_path))?;
    eprintln!("graph: n = {}, m = {}", g.n(), g.m());
    // Stream the build straight into the archive: worker threads write
    // each label's payload into its final blob position, so the labeling
    // is never held twice in memory (the blob is byte-identical to
    // build-then-serialize).
    let (store, diag) = FtcScheme::builder(&g)
        .params(&params)
        .threads(threads)
        .build_store(encoding)
        .map_err(|e| e.to_string())?;
    eprintln!("labels built: k = {}, {} levels", diag.k, diag.levels);

    fs::write(out_path, store.as_bytes()).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    println!(
        "wrote {} byte archive ({} vertices, {} edges) to {out_path}",
        store.as_bytes().len(),
        g.n(),
        g.m()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// info
// ---------------------------------------------------------------------------

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else { return Err(usage()) };
    let blob = read_archive_bytes(path)?;
    let view = LabelStoreView::open(&blob).map_err(|e| format!("{path}: {e}"))?;
    let header = view.header();
    let (k, levels) = view.edge_by_id(0).map_or((0, 0), |e| (e.k(), e.levels()));
    print!(
        "n {}\nm {}\nf {}\nk {k}\nlevels {levels}\nencoding {}\narchive_bytes {}\n",
        view.n(),
        view.m(),
        header.f,
        match view.encoding() {
            EdgeEncoding::Full => "full",
            EdgeEncoding::Compact => "compact",
        },
        view.archive_bytes()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// query
// ---------------------------------------------------------------------------

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [path, s_str, t_str] = positional.as_slice() else {
        return Err(usage());
    };
    let s: usize = s_str.parse().map_err(|_| "s must be a vertex ID")?;
    let t: usize = t_str.parse().map_err(|_| "t must be a vertex ID")?;

    let service = open_service(path)?;

    let mut fault_pairs = Vec::new();
    for spec in flags.iter().filter(|(k, _)| k == "fault").map(|(_, v)| v) {
        fault_pairs.push(parse_colon_pair("fault", spec)?);
    }
    // The positional pair plus any number of extra --pair queries, all
    // answered against one prepared session. The service validates
    // faults eagerly (unknown fault edges error even when every pair is
    // trivial) and answers trivial pairs before budget enforcement.
    let mut query_pairs = vec![(s, t)];
    for spec in flags.iter().filter(|(k, _)| k == "pair").map(|(_, v)| v) {
        query_pairs.push(parse_colon_pair("pair", spec)?);
    }

    let answers = service
        .query(&fault_pairs, &query_pairs)
        .map_err(|e| e.to_string())?;
    for (&(a, b), answer) in query_pairs.iter().zip(&answers) {
        let verdict = if answer { "connected" } else { "disconnected" };
        if query_pairs.len() == 1 {
            println!("{verdict}");
        } else {
            println!("{a} {b}: {verdict}");
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// serve
// ---------------------------------------------------------------------------

/// One parsed stdin query: a vertex pair plus its fault edges.
struct ServeQuery {
    s: usize,
    t: usize,
    faults: Vec<(usize, usize)>,
}

/// Parses a `s t [u:v ...]` query line; `None` for blanks and comments.
fn parse_query_line(line: &str) -> Result<Option<ServeQuery>, String> {
    let line = line.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(None);
    }
    let mut it = line.split_whitespace();
    let parse_vertex = |tok: Option<&str>| -> Result<usize, String> {
        tok.ok_or_else(|| format!("query '{line}': expected 's t [u:v ...]'"))?
            .parse()
            .map_err(|_| format!("query '{line}': bad vertex ID"))
    };
    let s = parse_vertex(it.next())?;
    let t = parse_vertex(it.next())?;
    let faults = it
        .map(|tok| parse_colon_pair("fault", tok))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Some(ServeQuery { s, t, faults }))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (positional, flags) = split_flags(args)?;
    let [path] = positional.as_slice() else {
        return Err(usage());
    };
    let threads: usize = flag_value(&flags, "threads")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--threads expects an integer (0 = stream on this thread)")?;
    let service = open_service(path)?;

    let stdin = std::io::stdin().lock();
    let mut stdout = std::io::stdout().lock();
    let report = |out: &mut dyn Write, q: &ServeQuery, connected: bool| -> Result<(), String> {
        let verdict = if connected {
            "connected"
        } else {
            "disconnected"
        };
        writeln!(out, "{} {} {verdict}", q.s, q.t).map_err(|e| format!("cannot write: {e}"))
    };

    if threads <= 1 {
        // Streaming mode: answer each line as it arrives.
        for line in stdin.lines() {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            let Some(q) = parse_query_line(&line)? else {
                continue;
            };
            let answers = service
                .query(&q.faults, &[(q.s, q.t)])
                .map_err(|e| format!("query '{} {}': {e}", q.s, q.t))?;
            report(&mut stdout, &q, answers.get(0).expect("one answer"))?;
            stdout.flush().map_err(|e| format!("cannot write: {e}"))?;
        }
        return Ok(());
    }

    // Batch mode: read everything, fan out over one shared service,
    // answer in input order.
    let queries = stdin
        .lines()
        .map(|line| {
            let line = line.map_err(|e| format!("cannot read stdin: {e}"))?;
            parse_query_line(&line)
        })
        .filter_map(Result::transpose)
        .collect::<Result<Vec<_>, String>>()?;
    let chunk = queries.len().div_ceil(threads).max(1);
    let answers: Vec<Result<bool, String>> = std::thread::scope(|scope| {
        let service = &service;
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|q| {
                            service
                                .query(&q.faults, &[(q.s, q.t)])
                                .map(|a| a.get(0).expect("one answer"))
                                .map_err(|e| format!("query '{} {}': {e}", q.s, q.t))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    for (q, answer) in queries.iter().zip(answers) {
        report(&mut stdout, q, answer?)?;
    }
    stdout.flush().map_err(|e| format!("cannot write: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn read_archive_bytes(path: &str) -> Result<Vec<u8>, String> {
    fs::read(path).map_err(|e| format!("cannot read archive {path}: {e}"))
}

/// Opens an archive file as a shared, thread-safe connectivity service.
fn open_service(path: &str) -> Result<ConnectivityService, String> {
    let blob = read_archive_bytes(path)?;
    ConnectivityService::from_archive_bytes(blob).map_err(|e| format!("{path}: {e}"))
}

/// Parses a `U:V` endpoint pair.
fn parse_colon_pair(what: &str, spec: &str) -> Result<(usize, usize), String> {
    let (u, v) = spec
        .split_once(':')
        .ok_or_else(|| format!("--{what} expects U:V, got '{spec}'"))?;
    let u: usize = u.parse().map_err(|_| format!("bad --{what} endpoint"))?;
    let v: usize = v.parse().map_err(|_| format!("bad --{what} endpoint"))?;
    Ok((u, v))
}

/// Parsed command line: positional arguments and `--name value` flags.
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

fn split_flags(args: &[String]) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it.next().ok_or(format!("--{name} expects a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((positional, flags))
}

fn flag_value(flags: &[(String, String)], name: &str) -> Option<String> {
    flags
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.clone())
}

fn read_graph(path: &Path) -> Result<Graph, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or(format!("line {}: expected 'u v'", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad vertex ID", lineno + 1))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u).max(v);
        edges.push((u, v));
    }
    if edges.is_empty() {
        return Err("graph file has no edges".into());
    }
    Ok(Graph::from_edges(max_v + 1, &edges))
}

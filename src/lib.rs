//! # ftc — fault-tolerant connectivity labeling
//!
//! Facade crate for the reproduction of *“Deterministic Fault-Tolerant
//! Connectivity Labeling Scheme”* (Izumi, Emek, Wadayama, Masuzawa,
//! PODC 2023). It re-exports the public API of every workspace crate so that
//! examples and downstream users can depend on a single package.
//!
//! See `README.md` for the session query API and `DESIGN.md` for the
//! system inventory and reproduced evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use ftc::core::{FtcScheme, Params};
//! use ftc::graph::Graph;
//!
//! // A 6-cycle: removing any single edge keeps it connected, removing the
//! // two edges around vertex 0 disconnects vertex 0 from the rest.
//! let g = Graph::cycle(6);
//! let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
//! let dec = scheme.labels();
//!
//! // One `QuerySession` per fault set; each answers any number of queries.
//! let one_fault = dec.session([dec.edge_label(0, 1).unwrap()]).unwrap();
//! assert!(one_fault.connected(dec.vertex_label(0), dec.vertex_label(3)).unwrap());
//!
//! let two_faults = dec.session([
//!     dec.edge_label(0, 1).unwrap(),
//!     dec.edge_label(5, 0).unwrap(),
//! ]).unwrap();
//! assert!(!two_faults.connected(dec.vertex_label(0), dec.vertex_label(3)).unwrap());
//! ```

pub use ftc_codes as codes;
pub use ftc_compress as compress;
pub use ftc_congest as congest;
pub use ftc_core as core;
pub use ftc_dyn as dyn_;
pub use ftc_field as field;
pub use ftc_geometry as geometry;
pub use ftc_graph as graph;
pub use ftc_net as net;
pub use ftc_routing as routing;
pub use ftc_serve as serve;
pub use ftc_sketch as sketch;

//! Counting-allocator proofs for the allocation-free serving hot path
//! and the single-copy build path:
//!
//! * a **warm** `session_in` rebuild (scratch recycled, same fault-set
//!   shapes seen before) performs **zero** heap allocations — through the
//!   fault ingestion, fragment CSR rebuild, slab/arena merge engine, and
//!   the adaptive decoder's Berlekamp–Massey + trace-algorithm internals;
//! * `connected`, `certified`, and `connected_many` (with a
//!   pre-reserved output buffer) allocate nothing per query;
//! * the **build pipeline** allocates the label payload **once** — one
//!   contiguous slab (or the archive blob itself for `build_store`) plus
//!   O(levels + threads) worker scratch; the historical per-edge
//!   `Vec` + full-payload-clone regime (≥ 3× the payload in allocated
//!   bytes) is pinned out by a byte ceiling.
//!
//! The allocator counts per thread, so parallel test threads don't
//! pollute each other's measurements.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, SessionScratch, ThresholdPolicy};
use ftc::graph::generators;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    /// Total bytes requested from the allocator (monotone).
    static ALLOCATED_BYTES: Cell<u64> = const { Cell::new(0) };
}

fn bump(bytes: usize) {
    // `Cell` with const initialization: the TLS access itself never
    // allocates, so the counters are safe to touch from inside the
    // allocator.
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
    ALLOCATED_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f`, returning (allocations performed on this thread, result).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let r = f();
    (ALLOCATIONS.with(Cell::get) - before, r)
}

/// Runs `f`, returning (allocations, bytes requested, result) — all on
/// this thread.
fn count_alloc_bytes<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    let (before_n, before_b) = (ALLOCATIONS.with(Cell::get), ALLOCATED_BYTES.with(Cell::get));
    let r = f();
    (
        ALLOCATIONS.with(Cell::get) - before_n,
        ALLOCATED_BYTES.with(Cell::get) - before_b,
        r,
    )
}

#[test]
fn warm_rebuilds_and_queries_are_allocation_free() {
    let g = generators::random_connected(120, 200, 5);
    let params = Params::deterministic(4).with_threshold(ThresholdPolicy::Fixed(64));
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let l = scheme.labels();
    let fsets: Vec<Vec<usize>> = (0..4)
        .map(|s| generators::random_fault_set(&g, 4, s))
        .collect();

    let mut scratch = SessionScratch::new();
    // Warm-up: two full passes so every buffer (including the decoder's
    // trace-algorithm pools) reaches its steady-state capacity.
    for _ in 0..2 {
        for fs in &fsets {
            let session = l
                .session_in(fs.iter().map(|&e| l.edge_label_by_id(e)), &mut scratch)
                .unwrap();
            scratch.recycle(session);
        }
    }

    let pairs: Vec<_> = (0..256usize)
        .map(|i| {
            (
                l.vertex_label((i * 31 + 3) % g.n()),
                l.vertex_label((i * 57 + 11) % g.n()),
            )
        })
        .collect();
    let mut answers: Vec<bool> = Vec::with_capacity(pairs.len());

    for fs in &fsets {
        let (allocs, session) = count_allocs(|| {
            l.session_in(fs.iter().map(|&e| l.edge_label_by_id(e)), &mut scratch)
                .unwrap()
        });
        assert_eq!(allocs, 0, "warm session_in rebuild allocated for {fs:?}");

        let (allocs, _) = count_allocs(|| {
            for (s, t) in &pairs {
                assert!(session.connected(s, t).is_ok());
                assert!(session.certified(s, t).is_ok());
            }
        });
        assert_eq!(allocs, 0, "per-query path allocated");

        let (allocs, _) = count_allocs(|| {
            session.connected_many(&pairs, &mut answers).unwrap();
        });
        assert_eq!(allocs, 0, "connected_many allocated");
        assert_eq!(answers.len(), pairs.len());

        scratch.recycle(session);
    }
}

#[test]
fn build_path_allocates_one_payload_copy() {
    // A payload-dominated instance: k is large enough that the syndrome
    // slab dwarfs every auxiliary structure, so the byte ceiling below
    // genuinely discriminates "one payload copy" from the historical
    // per-edge-Vec + clone + double-buffered-encode regime (≥ 3×).
    let g = generators::random_connected(220, 1400, 17);
    let params = Params::deterministic(4).with_threshold(ThresholdPolicy::Fixed(128));

    // Streaming build-to-archive: the blob IS the payload's single copy.
    let (allocs, bytes, (store, diag)) = count_alloc_bytes(|| {
        FtcScheme::builder(&g)
            .params(&params)
            .threads(1)
            .build_store(EdgeEncoding::Full)
            .unwrap()
    });
    let blob = store.as_bytes().len() as u64;
    let payload = (g.m() * 2 * diag.k * diag.levels * 8) as u64;
    assert!(payload * 3 > blob * 2, "instance must be payload-dominated");
    assert!(
        bytes < blob + blob / 2,
        "build_store allocated {bytes} bytes for a {blob}-byte archive — \
         a second payload copy crept back in"
    );
    // Beyond the blob and the O(levels + threads) worker scratch, the
    // build allocates only graph-shaped structures (adjacency lists,
    // tree arrays — ~1.5 per auxiliary vertex here). The historical
    // payload path added ≥ 3 allocations per edge on top of that
    // baseline (per-edge sum Vec, owned-label clone, per-edge encode
    // buffer ≈ 3m ≈ m·levels on this instance), so staying below
    // m·levels pins the per-edge payload allocations out.
    let per_edge_regime = (g.m() * diag.levels) as u64;
    assert!(
        allocs < per_edge_regime,
        "build_store performed {allocs} allocations (per-edge payload \
         regime would add ≥ {per_edge_regime})"
    );

    // Owned build: same ceiling (slab + `Arc` hand-off = ≤ 2 payload
    // copies, vs ≥ 3 for the historical path), and every edge label must
    // be a window into the one shared slab — no per-edge payload `Vec`.
    let (allocs, bytes, scheme) = count_alloc_bytes(|| {
        FtcScheme::builder(&g)
            .params(&params)
            .threads(1)
            .build()
            .unwrap()
    });
    assert!(
        bytes < payload * 5 / 2,
        "build allocated {bytes} bytes for a {payload}-byte payload"
    );
    assert!(
        allocs < per_edge_regime,
        "build performed {allocs} allocations"
    );
    assert!(
        scheme
            .labels()
            .edge_labels()
            .all(|l| l.vec.is_slab_window()),
        "every edge label must window the shared payload slab"
    );
}

#[test]
fn warm_archive_rebuilds_are_allocation_free() {
    // The zero-copy archive path — endpoint-index fault resolution plus
    // byte-view ingestion — must be just as allocation-free, for both
    // encodings through one shared scratch.
    let g = generators::random_connected(100, 160, 8);
    let params = Params::deterministic(4).with_threshold(ThresholdPolicy::Fixed(64));
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let fault_pairs: Vec<Vec<(usize, usize)>> = (0..3)
        .map(|s| {
            generators::random_fault_set(&g, 4, s)
                .iter()
                .map(|&e| endpoint_of[e])
                .collect()
        })
        .collect();
    let blobs = [
        LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full),
        LabelStore::to_vec(scheme.labels(), EdgeEncoding::Compact),
    ];
    let views: Vec<LabelStoreView> = blobs
        .iter()
        .map(|b| LabelStoreView::open(b).unwrap())
        .collect();

    let mut scratch = SessionScratch::new();
    for _ in 0..2 {
        for view in &views {
            for fp in &fault_pairs {
                let session = view.session_in(fp.iter().copied(), &mut scratch).unwrap();
                scratch.recycle(session);
            }
        }
    }
    for view in &views {
        for fp in &fault_pairs {
            let (allocs, session) =
                count_allocs(|| view.session_in(fp.iter().copied(), &mut scratch).unwrap());
            assert_eq!(
                allocs,
                0,
                "warm archive session_in allocated ({:?}, {fp:?})",
                view.encoding()
            );
            let (allocs, _) = count_allocs(|| {
                let a = view.vertex(0).unwrap();
                let b = view.vertex(g.n() - 1).unwrap();
                assert!(session.connected(a, b).is_ok());
            });
            assert_eq!(allocs, 0, "archive query path allocated");
            scratch.recycle(session);
        }
    }
}

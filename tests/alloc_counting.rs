//! Counting-allocator proofs for the allocation-free serving hot path:
//!
//! * a **warm** `session_in` rebuild (scratch recycled, same fault-set
//!   shapes seen before) performs **zero** heap allocations — through the
//!   fault ingestion, fragment CSR rebuild, slab/arena merge engine, and
//!   the adaptive decoder's Berlekamp–Massey + trace-algorithm internals;
//! * `connected`, `certified`, and `connected_many` (with a
//!   pre-reserved output buffer) allocate nothing per query.
//!
//! The allocator counts per thread, so parallel test threads don't
//! pollute each other's measurements.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, SessionScratch, ThresholdPolicy};
use ftc::graph::generators;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // `Cell` with const initialization: the TLS access itself never
    // allocates, so the counter is safe to touch from inside the
    // allocator.
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f`, returning (allocations performed on this thread, result).
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.with(Cell::get);
    let r = f();
    (ALLOCATIONS.with(Cell::get) - before, r)
}

#[test]
fn warm_rebuilds_and_queries_are_allocation_free() {
    let g = generators::random_connected(120, 200, 5);
    let params = Params::deterministic(4).with_threshold(ThresholdPolicy::Fixed(64));
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let l = scheme.labels();
    let fsets: Vec<Vec<usize>> = (0..4)
        .map(|s| generators::random_fault_set(&g, 4, s))
        .collect();

    let mut scratch = SessionScratch::new();
    // Warm-up: two full passes so every buffer (including the decoder's
    // trace-algorithm pools) reaches its steady-state capacity.
    for _ in 0..2 {
        for fs in &fsets {
            let session = l
                .session_in(fs.iter().map(|&e| l.edge_label_by_id(e)), &mut scratch)
                .unwrap();
            scratch.recycle(session);
        }
    }

    let pairs: Vec<_> = (0..256usize)
        .map(|i| {
            (
                l.vertex_label((i * 31 + 3) % g.n()),
                l.vertex_label((i * 57 + 11) % g.n()),
            )
        })
        .collect();
    let mut answers: Vec<bool> = Vec::with_capacity(pairs.len());

    for fs in &fsets {
        let (allocs, session) = count_allocs(|| {
            l.session_in(fs.iter().map(|&e| l.edge_label_by_id(e)), &mut scratch)
                .unwrap()
        });
        assert_eq!(allocs, 0, "warm session_in rebuild allocated for {fs:?}");

        let (allocs, _) = count_allocs(|| {
            for (s, t) in &pairs {
                assert!(session.connected(s, t).is_ok());
                assert!(session.certified(s, t).is_ok());
            }
        });
        assert_eq!(allocs, 0, "per-query path allocated");

        let (allocs, _) = count_allocs(|| {
            session.connected_many(&pairs, &mut answers).unwrap();
        });
        assert_eq!(allocs, 0, "connected_many allocated");
        assert_eq!(answers.len(), pairs.len());

        scratch.recycle(session);
    }
}

#[test]
fn warm_archive_rebuilds_are_allocation_free() {
    // The zero-copy archive path — endpoint-index fault resolution plus
    // byte-view ingestion — must be just as allocation-free, for both
    // encodings through one shared scratch.
    let g = generators::random_connected(100, 160, 8);
    let params = Params::deterministic(4).with_threshold(ThresholdPolicy::Fixed(64));
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let fault_pairs: Vec<Vec<(usize, usize)>> = (0..3)
        .map(|s| {
            generators::random_fault_set(&g, 4, s)
                .iter()
                .map(|&e| endpoint_of[e])
                .collect()
        })
        .collect();
    let blobs = [
        LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full),
        LabelStore::to_vec(scheme.labels(), EdgeEncoding::Compact),
    ];
    let views: Vec<LabelStoreView> = blobs
        .iter()
        .map(|b| LabelStoreView::open(b).unwrap())
        .collect();

    let mut scratch = SessionScratch::new();
    for _ in 0..2 {
        for view in &views {
            for fp in &fault_pairs {
                let session = view.session_in(fp.iter().copied(), &mut scratch).unwrap();
                scratch.recycle(session);
            }
        }
    }
    for view in &views {
        for fp in &fault_pairs {
            let (allocs, session) =
                count_allocs(|| view.session_in(fp.iter().copied(), &mut scratch).unwrap());
            assert_eq!(
                allocs,
                0,
                "warm archive session_in allocated ({:?}, {fp:?})",
                view.encoding()
            );
            let (allocs, _) = count_allocs(|| {
                let a = view.vertex(0).unwrap();
                let b = view.vertex(g.n() - 1).unwrap();
                assert!(session.connected(a, b).is_ok());
            });
            assert_eq!(allocs, 0, "archive query path allocated");
            scratch.recycle(session);
        }
    }
}

//! Full vs whp query support (Table 1's "correctness" column): the
//! deterministic schemes answer *every* query correctly; the sketch
//! baseline is allowed rare failures — and must never be silently wrong
//! in our engine (failures surface as errors).

use ftc::core::baseline::{SketchParams, SketchScheme};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators, Graph};

#[test]
fn deterministic_full_support_zero_errors() {
    let g = Graph::torus(3, 3);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    let mut queries = 0usize;
    for a in 0..g.m() {
        for b in (a + 1)..g.m() {
            let session = l
                .session([l.edge_label_by_id(a), l.edge_label_by_id(b)])
                .expect("deterministic full support");
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let got = session
                        .connected(l.vertex_label(s), l.vertex_label(t))
                        .expect("deterministic full support");
                    assert_eq!(got, connectivity::connected_avoiding(&g, s, t, &[a, b]));
                    queries += 1;
                }
            }
        }
    }
    assert!(
        queries > 10_000,
        "the sweep must be exhaustive, ran {queries}"
    );
}

#[test]
fn sketch_baseline_is_rarely_wrong_and_flags_failures() {
    let g = generators::random_connected(20, 22, 7);
    let scheme = SketchScheme::build(&g, &SketchParams::new(2, 1234)).unwrap();
    let l = scheme.labels();
    let mut wrong = 0usize;
    let mut failed = 0usize;
    let mut total = 0usize;
    for i in 0..60u64 {
        let fset = generators::random_fault_set(&g, 2, i);
        let queries = g.n() * (g.n() - 1) / 2;
        match l.session(fset.iter().map(|&e| l.edge_label_by_id(e))) {
            Err(_) => {
                total += queries;
                failed += queries;
            }
            Ok(session) => {
                for s in 0..g.n() {
                    for t in (s + 1)..g.n() {
                        total += 1;
                        match session.connected(l.vertex_label(s), l.vertex_label(t)) {
                            Ok(got) => {
                                if got != connectivity::connected_avoiding(&g, s, t, &fset) {
                                    wrong += 1;
                                }
                            }
                            Err(_) => failed += 1,
                        }
                    }
                }
            }
        }
    }
    // whp: overwhelmingly correct; failures are surfaced, not hidden.
    assert_eq!(
        wrong, 0,
        "sketch produced {wrong}/{total} silently wrong answers"
    );
    assert!(
        failed * 20 < total,
        "sketch failure rate implausibly high: {failed}/{total}"
    );
}

#[test]
fn label_sizes_baseline_vs_deterministic() {
    // The headline trade-off of Table 1: the deterministic scheme pays a
    // larger (f²·polylog) label for full support; the whp sketch stays
    // polylog. Confirm the measured ordering.
    let g = generators::random_connected(40, 60, 11);
    let det = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let whp = SketchScheme::build(&g, &SketchParams::new(2, 5)).unwrap();
    let rnd = FtcScheme::build(&g, &Params::randomized(2, 5)).unwrap();
    let (d, w, r) = (
        det.size_report().edge_bits,
        whp.size_report().edge_bits,
        rnd.size_report().edge_bits,
    );
    assert!(
        d > r,
        "deterministic ({d}) should exceed randomized-full ({r})"
    );
    assert!(
        r > w,
        "randomized-full ({r}) should exceed whp sketch ({w})"
    );
}

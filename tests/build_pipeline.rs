//! Whole-pipeline guarantees of the streaming, arena-backed build:
//!
//! * every thread count produces **byte-identical** archives, in both
//!   encodings — not just the subtree-sum stage, the whole pipeline
//!   (aux graph, hierarchy, labels, index, serialization);
//! * `SchemeBuilder::build_store` emits exactly the bytes of
//!   write-after-build (`LabelStore::to_vec` of the equivalent owned
//!   build), for every thread count;
//! * parallel-edge endpoint lookups keep the historical semantics
//!   (largest edge ID wins) in both the in-memory index and the archive;
//! * a large-`n` build (release only) answers like the BFS/union-find
//!   oracle.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, ThresholdPolicy};
use ftc::graph::connectivity::ConnectivityOracle;
use ftc::graph::{generators, Graph};

const ENCODINGS: [EdgeEncoding; 2] = [EdgeEncoding::Full, EdgeEncoding::Compact];

#[test]
fn whole_pipeline_is_byte_identical_across_thread_counts() {
    let g = generators::random_connected(80, 140, 21);
    for params in [Params::deterministic(2), Params::randomized(2, 9)] {
        let reference: Vec<Vec<u8>> = ENCODINGS
            .iter()
            .map(|&enc| {
                let scheme = FtcScheme::builder(&g).params(&params).build().unwrap();
                LabelStore::to_vec(scheme.labels(), enc)
            })
            .collect();
        for threads in [2usize, 8] {
            for (enc, want) in ENCODINGS.iter().zip(&reference) {
                let scheme = FtcScheme::builder(&g)
                    .params(&params)
                    .threads(threads)
                    .build()
                    .unwrap();
                assert_eq!(
                    &LabelStore::to_vec(scheme.labels(), *enc),
                    want,
                    "threads={threads} {enc:?} {params:?}"
                );
            }
        }
    }
}

#[test]
fn build_store_matches_write_after_build_byte_for_byte() {
    let g = generators::random_connected(70, 120, 5);
    let params = Params::deterministic(2);
    for enc in ENCODINGS {
        let owned = FtcScheme::builder(&g).params(&params).build().unwrap();
        let want = LabelStore::to_vec(owned.labels(), enc);
        for threads in [1usize, 2, 8] {
            let (store, diag) = FtcScheme::builder(&g)
                .params(&params)
                .threads(threads)
                .build_store(enc)
                .unwrap();
            assert_eq!(
                store.as_bytes(),
                &want[..],
                "threads={threads} {enc:?} blob diverged"
            );
            assert_eq!(diag.k, owned.diagnostics().k);
            assert_eq!(diag.levels, owned.diagnostics().levels);
        }
        // from_builder is the same streaming path.
        let via_helper =
            LabelStore::from_builder(FtcScheme::builder(&g).params(&params).threads(2), enc)
                .unwrap();
        assert_eq!(via_helper.as_bytes(), &want[..]);
    }
}

#[test]
fn build_store_archives_serve_sessions() {
    // The streamed blob is not just structurally valid: it answers
    // queries like the owned labels do.
    let g = generators::random_connected(48, 70, 11);
    let params = Params::deterministic(2);
    let owned = FtcScheme::builder(&g).params(&params).build().unwrap();
    let l = owned.labels();
    for enc in ENCODINGS {
        let (store, _) = FtcScheme::builder(&g)
            .params(&params)
            .threads(2)
            .build_store(enc)
            .unwrap();
        let view = store.view();
        let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
        for seed in 0..6u64 {
            let faults = generators::random_fault_set(&g, 2, seed);
            let session = view
                .session(faults.iter().map(|&e| endpoint_of[e]))
                .unwrap();
            let owned_session = l
                .session(faults.iter().map(|&e| l.edge_label_by_id(e)))
                .unwrap();
            for s in (0..g.n()).step_by(3) {
                for t in (1..g.n()).step_by(2) {
                    assert_eq!(
                        session.connected(view.vertex(s).unwrap(), view.vertex(t).unwrap()),
                        owned_session.connected(l.vertex_label(s), l.vertex_label(t)),
                        "({s},{t},{faults:?},{enc:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_edge_endpoint_semantics_are_pinned() {
    // A multigraph: edges 1, 3, and 5 all join (1, 2).
    let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (2, 1), (3, 0), (1, 2)]);
    let params = Params::deterministic(3);
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let l = scheme.labels();
    assert_eq!(l.m(), 6, "every parallel edge keeps its own label");

    // Endpoint lookup resolves to the LARGEST edge ID joining the pair —
    // the historical HashMap insert-order semantics.
    let by_pair = l.edge_label(1, 2).unwrap();
    assert_eq!(by_pair, l.edge_label_by_id(5));
    assert_eq!(l.edge_label(2, 1).unwrap(), l.edge_label_by_id(5));
    // Edge-ID addressing still reaches each parallel edge individually,
    // and their labels are genuinely distinct (distinct σ(e) images).
    assert_ne!(l.edge_label_by_id(1), l.edge_label_by_id(5));
    assert_ne!(l.edge_label_by_id(3), l.edge_label_by_id(5));

    // The archive agrees: its endpoint index stores one entry per
    // normalized pair, resolving to the same edge ID, for both the
    // write-after-build and the streaming path.
    for enc in ENCODINGS {
        let blob = LabelStore::to_vec(l, enc);
        let (streamed, _) = FtcScheme::builder(&g)
            .params(&params)
            .build_store(enc)
            .unwrap();
        assert_eq!(streamed.as_bytes(), &blob[..]);
        let view = LabelStoreView::open(&blob).unwrap();
        assert_eq!(view.endpoint_index().len(), 4); // 6 edges, 4 distinct pairs
        assert_eq!(view.edge_id(1, 2), Some(5));
        assert_eq!(view.edge_id(2, 1), Some(5));
        // Reconstitution keeps both the labels and the index semantics.
        let restored = view.to_label_set();
        assert_eq!(restored.edge_label(1, 2).unwrap(), l.edge_label_by_id(5));
        for e in 0..g.m() {
            assert_eq!(restored.edge_label_by_id(e), l.edge_label_by_id(e));
        }
    }

    // Faulting one parallel edge must not disconnect anything (its twin
    // survives); faulting both severs 1–2 unless the long way around
    // remains — exercise sessions over parallel-edge fault sets by ID.
    let session = l
        .session([
            l.edge_label_by_id(1),
            l.edge_label_by_id(3),
            l.edge_label_by_id(5),
        ])
        .unwrap();
    // 1 and 2 stay connected through 0–3: 1–0, 0–3(edge 4), 3–2.
    assert_eq!(
        session.connected(l.vertex_label(1), l.vertex_label(2)),
        Ok(true)
    );
    let oracle = |faults: &[usize], s: usize, t: usize| {
        ftc::graph::connectivity::connected_avoiding(&g, s, t, faults)
    };
    assert!(oracle(&[1, 3, 5], 1, 2));
    let session = l
        .session([
            l.edge_label_by_id(1),
            l.edge_label_by_id(3),
            l.edge_label_by_id(5),
            l.edge_label_by_id(0),
        ])
        .unwrap_err();
    // f = 3 budget: a 4-fault set is over budget — the point is only
    // that parallel-edge IDs dedup as distinct faults (no collapse).
    assert_eq!(
        session,
        ftc::core::QueryError::TooManyFaults {
            supplied: 4,
            budget: 3
        }
    );
}

/// Differential build-vs-oracle at large `n`. Debug builds skip it (the
/// tier-1 `cargo test -q` stays fast); CI and local `--release` runs
/// exercise it via `cargo test --release`.
#[test]
#[cfg_attr(debug_assertions, ignore = "large-n differential runs in release only")]
fn large_n_build_matches_oracle() {
    let n = 20_000;
    let g = generators::random_connected(n, n / 2, 4242);
    let params = Params::deterministic(2).with_threshold(ThresholdPolicy::Fixed(88));
    let (store, diag) = FtcScheme::builder(&g)
        .params(&params)
        .threads(0)
        .build_store(EdgeEncoding::Full)
        .unwrap();
    assert!(diag.levels > 0);
    let view = store.view();
    assert_eq!(view.n(), n);
    let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    // Many pairs per fault set against the prepared union-find oracle —
    // the oracle cost is one O(m α) sweep per fault set, not a BFS per
    // pair, so the differential stays linear at this scale.
    let mut oracle = ConnectivityOracle::new(&g);
    for seed in 0..8u64 {
        let faults = generators::random_fault_set(&g, 2, seed);
        oracle.prepare(&faults);
        let session = view
            .session(faults.iter().map(|&e| endpoint_of[e]))
            .unwrap();
        for i in 0..400usize {
            let s = (i * 7919 + 3) % n;
            let t = (i * 104_729 + 11) % n;
            assert_eq!(
                session
                    .connected(view.vertex(s).unwrap(), view.vertex(t).unwrap())
                    .unwrap(),
                oracle.connected(s, t),
                "({s},{t},{faults:?})"
            );
        }
    }
}

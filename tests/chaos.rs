//! Seeded fault-injection integration: resilient clients query a real
//! server through the chaos proxy (connection resets, byte corruption,
//! stalled writes) while checking every answer against the BFS oracle.
//! The contract: chaos surfaces as typed errors or transparent
//! recovery — never a wrong answer, a desynced stream, or a hang.

use ftc::core::store::{EdgeEncoding, LabelStore};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators, Graph};
use ftc::net::chaos::{ChaosConfig, ChaosProxy};
use ftc::net::client::{Client, ClientConfig, ClientError};
use ftc::net::server::{Server, ServerConfig, ServerHandle};
use ftc::serve::{ConnectivityService, ServiceRegistry};
use std::sync::Arc;
use std::time::Duration;

fn service_of(g: &Graph, f: usize) -> ConnectivityService {
    let scheme = FtcScheme::build(g, &Params::deterministic(f)).unwrap();
    let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full);
    ConnectivityService::from_archive_bytes(blob).unwrap()
}

fn spawn(
    registry: Arc<ServiceRegistry>,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            read_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Resilient clients under randomized (but seeded) resets, corruption,
/// and stalls: every completed answer must match the BFS oracle, and
/// every client must complete its full workload — the retry layer makes
/// injected chaos invisible above it.
#[test]
fn resilient_clients_survive_chaos_with_correct_answers() {
    let g = generators::random_connected(30, 45, 5);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    let mut proxy = ChaosProxy::spawn(
        handle.addr(),
        ChaosConfig {
            seed: 0xFEED_FACE,
            reset_per_10k: 150,
            corrupt_per_10k: 300,
            stall_per_10k: 300,
            stall: Duration::from_millis(1),
        },
    )
    .unwrap();
    let proxy_addr = proxy.addr();

    let all: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    std::thread::scope(|scope| {
        for worker in 0..3usize {
            let (g, all) = (&g, &all);
            scope.spawn(move || {
                let config = ClientConfig {
                    retries: 32,
                    jitter_seed: 0xFEED_FACE ^ worker as u64,
                    read_timeout: Some(Duration::from_secs(2)),
                    write_timeout: Some(Duration::from_secs(2)),
                    ..ClientConfig::default()
                };
                let mut client = Client::connect_with(proxy_addr, config).unwrap();
                for i in 0..120usize {
                    let fset = generators::random_fault_set(g, 2, (worker * 131 + i) as u64);
                    let endpoints: Vec<(usize, usize)> = fset.iter().map(|&e| all[e]).collect();
                    let pairs = [(i % g.n(), (i * 3 + worker) % g.n())];
                    let answers = client
                        .query("g", &endpoints, &pairs)
                        .expect("the retry budget absorbs injected chaos");
                    let want = connectivity::connected_avoiding(g, pairs[0].0, pairs[0].1, &fset);
                    assert_eq!(answers, vec![want], "wrong answer under chaos");
                }
            });
        }
    });

    let chaos = proxy.stats();
    assert!(chaos.forwarded_bytes > 0);
    proxy.shutdown();
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// With a 100% corruption rate and no retry budget, a query must fail
/// with a *typed* error — a corrupted request surfaces as a
/// connection-level rejection, a corrupted response as a checksum
/// mismatch — and must never return a wrong answer or hang.
#[test]
fn corruption_without_retries_is_a_typed_error_never_a_wrong_answer() {
    let g = Graph::torus(3, 4);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    let mut proxy = ChaosProxy::spawn(
        handle.addr(),
        ChaosConfig {
            seed: 7,
            reset_per_10k: 0,
            corrupt_per_10k: 10_000, // every chunk gets one byte flipped
            stall_per_10k: 0,
            stall: Duration::from_millis(0),
        },
    )
    .unwrap();

    let config = ClientConfig {
        read_timeout: Some(Duration::from_secs(2)),
        ..ClientConfig::default() // retries = 0
    };
    let mut client = Client::connect_with(proxy.addr(), config).unwrap();
    match client.query("g", &[(0, 1)], &[(0, 7)]) {
        Ok(_) => panic!("a corrupted exchange cannot produce an answer"),
        Err(ClientError::Io(_) | ClientError::Proto(_)) => {} // typed, attributable
        Err(e) => panic!("unexpected error class under corruption: {e}"),
    }

    proxy.shutdown();
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// The same seed injects the same faults: two proxies over the same
/// byte streams report identical corruption decisions. (Connection
/// arrival order is pinned by running one connection at a time.)
#[test]
fn chaos_decisions_are_reproducible_for_a_seed() {
    let g = Graph::torus(3, 4);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    let run = |seed: u64| {
        let mut proxy = ChaosProxy::spawn(
            handle.addr(),
            ChaosConfig {
                seed,
                reset_per_10k: 0, // resets would abort the fixed workload
                corrupt_per_10k: 2_000,
                stall_per_10k: 0,
                stall: Duration::from_millis(0),
            },
        )
        .unwrap();
        let config = ClientConfig {
            retries: 64,
            jitter_seed: seed,
            backoff_base: Duration::from_millis(1),
            read_timeout: Some(Duration::from_secs(2)),
            ..ClientConfig::default()
        };
        let mut client = Client::connect_with(proxy.addr(), config).unwrap();
        for i in 0..40usize {
            let answers = client
                .query("g", &[(0, 1)], &[(i % 12, (i * 5) % 12)])
                .unwrap();
            assert_eq!(answers.len(), 1);
        }
        drop(client);
        let stats = proxy.stats();
        proxy.shutdown();
        stats
    };

    let a = run(42);
    let b = run(42);
    let c = run(43);
    // Same seed, same workload: identical injection decisions on the
    // first connection's streams. (Reconnects shift chunking, so only
    // compare runs whose corruption kept the exchange single-chunked —
    // the counters still must match exactly for the same seed.)
    assert_eq!(
        a.corrupted_bytes, b.corrupted_bytes,
        "same seed must corrupt identically"
    );
    // A different seed is allowed to differ (and with these rates, does
    // not have to) — just confirm the runs completed.
    assert!(c.forwarded_bytes > 0);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

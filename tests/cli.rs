//! End-to-end test of the `ftc-cli` binary: build a label archive from an
//! edge-list file, then answer queries from the stored archive alone.

use std::fs;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftc-cli"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = cli().args(args).output().expect("spawn ftc-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn build_info_query_round_trip() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_test_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("cycle6.txt");
    // A 6-cycle with comments and blank lines.
    fs::write(
        &graph_file,
        "# six cycle\n0 1\n1 2\n2 3\n\n3 4\n4 5\n5 0  # closing edge\n",
    )
    .unwrap();
    let archive = dir.join("labels.ftc");
    let archive_str = archive.to_str().unwrap();

    let (ok, stdout, stderr) = run(&[
        "build",
        graph_file.to_str().unwrap(),
        archive_str,
        "--f",
        "2",
    ]);
    assert!(ok, "build failed: {stderr}");
    assert!(stdout.contains("byte archive"), "stdout: {stdout}");
    // A single blob is written, nothing else.
    assert!(archive.is_file());

    let (ok, stdout, _) = run(&["info", archive_str]);
    assert!(ok);
    assert!(stdout.contains("n 6") && stdout.contains("m 6") && stdout.contains("f 2"));
    assert!(stdout.contains("encoding full"));

    // One fault: still connected around the cycle.
    let (ok, stdout, _) = run(&["query", archive_str, "0", "3", "--fault", "0:1"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "connected");

    // Two faults cutting vertex 0's arc.
    let (ok, stdout, _) = run(&[
        "query",
        archive_str,
        "1",
        "4",
        "--fault",
        "0:1",
        "--fault",
        "3:4",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "disconnected");

    // Fault given in reversed endpoint order resolves too.
    let (ok, stdout, _) = run(&[
        "query",
        archive_str,
        "1",
        "4",
        "--fault",
        "1:0",
        "--fault",
        "4:3",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "disconnected");

    // Batched queries: one session build answers the positional pair and
    // every --pair, labeled one per line.
    let (ok, stdout, _) = run(&[
        "query",
        archive_str,
        "1",
        "4",
        "--fault",
        "0:1",
        "--fault",
        "3:4",
        "--pair",
        "1:3",
        "--pair",
        "2:2",
    ]);
    assert!(ok);
    assert_eq!(
        stdout.trim().lines().collect::<Vec<_>>(),
        vec!["1 4: disconnected", "1 3: connected", "2 2: connected"]
    );

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn compact_archives_round_trip_and_undercut_full() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_compact_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("grid.txt");
    // 3×3 grid edge list.
    let mut edges = String::new();
    for r in 0..3usize {
        for c in 0..3usize {
            let v = r * 3 + c;
            if c + 1 < 3 {
                edges.push_str(&format!("{} {}\n", v, v + 1));
            }
            if r + 1 < 3 {
                edges.push_str(&format!("{} {}\n", v, v + 3));
            }
        }
    }
    fs::write(&graph_file, edges).unwrap();
    let full = dir.join("full.ftc");
    let compact = dir.join("compact.ftc");
    assert!(
        run(&[
            "build",
            graph_file.to_str().unwrap(),
            full.to_str().unwrap()
        ])
        .0
    );
    assert!(
        run(&[
            "build",
            graph_file.to_str().unwrap(),
            compact.to_str().unwrap(),
            "--encoding",
            "compact",
        ])
        .0
    );
    let full_len = fs::metadata(&full).unwrap().len();
    let compact_len = fs::metadata(&compact).unwrap().len();
    assert!(
        compact_len < full_len,
        "compact archive ({compact_len}) should undercut full ({full_len})"
    );
    let (ok, stdout, _) = run(&["info", compact.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("encoding compact"));
    // Both encodings answer identically.
    for archive in [&full, &compact] {
        let (ok, stdout, _) = run(&[
            "query",
            archive.to_str().unwrap(),
            "0",
            "8",
            "--fault",
            "0:1",
            "--fault",
            "3:4",
        ]);
        assert!(ok);
        assert_eq!(stdout.trim(), "connected");
    }
    let _ = fs::remove_dir_all(&dir);
}

/// `build --compress`, `compress`, and `decompress` round-trip through
/// the v2 container: the streamed build matches the transcode
/// byte-for-byte, `decompress` recovers the v1 blob exactly, and
/// `info`/`query` work on the compressed archive directly.
#[test]
fn compressed_archives_round_trip() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_compress_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("cycle6.txt");
    fs::write(&graph_file, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n").unwrap();
    let graph = graph_file.to_str().unwrap();
    let v1 = dir.join("labels.ftc");
    let v2 = dir.join("labels.ftcz");
    let v2b = dir.join("transcoded.ftcz");
    let back = dir.join("back.ftc");

    assert!(run(&["build", graph, v1.to_str().unwrap(), "--f", "2"]).0);
    let (ok, stdout, stderr) = run(&[
        "build",
        graph,
        v2.to_str().unwrap(),
        "--f",
        "2",
        "--compress",
    ]);
    assert!(ok, "build --compress failed: {stderr}");
    assert!(stdout.contains("compressed archive"), "stdout: {stdout}");
    assert!(
        fs::metadata(&v2).unwrap().len() < fs::metadata(&v1).unwrap().len(),
        "compressed archive should undercut v1"
    );

    // Streamed compressed build == transcoded v1, byte for byte.
    assert!(run(&["compress", v1.to_str().unwrap(), v2b.to_str().unwrap()]).0);
    assert_eq!(fs::read(&v2).unwrap(), fs::read(&v2b).unwrap());

    // decompress recovers the original blob exactly.
    assert!(run(&["decompress", v2.to_str().unwrap(), back.to_str().unwrap()]).0);
    assert_eq!(fs::read(&v1).unwrap(), fs::read(&back).unwrap());

    // info reports the section table and ratio without decoding.
    let (ok, stdout, _) = run(&["info", v2.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("format v2-compressed"), "stdout: {stdout}");
    assert!(stdout.contains("ratio "));
    assert!(stdout.contains("section level-rows[0]"));

    // Queries answer identically from either format.
    for archive in [&v1, &v2] {
        let (ok, stdout, _) = run(&[
            "query",
            archive.to_str().unwrap(),
            "1",
            "4",
            "--fault",
            "0:1",
            "--fault",
            "3:4",
        ]);
        assert!(ok);
        assert_eq!(stdout.trim(), "disconnected");
    }

    // Corrupt section payloads surface as typed errors at query time.
    let mut bytes = fs::read(&v2).unwrap();
    let at = bytes.len() - 10;
    bytes[at] ^= 0xFF;
    let bad = dir.join("bad.ftcz");
    fs::write(&bad, &bytes).unwrap();
    let (ok, _, stderr) = run(&["query", bad.to_str().unwrap(), "1", "4", "--fault", "0:1"]);
    assert!(!ok);
    assert!(
        stderr.contains("corrupt") || stderr.contains("checksum") || stderr.contains("byte"),
        "stderr: {stderr}"
    );

    let _ = fs::remove_dir_all(&dir);
}

/// `serve` answers line-delimited stdin queries in order — identically
/// in streaming mode and in `--threads N` batch mode.
#[test]
fn serve_answers_stdin_queries_in_order() {
    use std::io::Write;
    use std::process::Stdio;

    let dir = std::env::temp_dir().join(format!("ftc_cli_serve_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("cycle6.txt");
    fs::write(&graph_file, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n").unwrap();
    let archive = dir.join("labels.ftc");
    let archive_str = archive.to_str().unwrap();
    assert!(
        run(&[
            "build",
            graph_file.to_str().unwrap(),
            archive_str,
            "--f",
            "2"
        ])
        .0
    );

    let input = "# one query per line: s t [u:v ...]\n\
                 0 3 0:1\n\
                 1 4 0:1 3:4\n\
                 1 4 1:0 4:3\n\
                 2 2 0:1\n\
                 \n\
                 0 3\n";
    let want = "0 3 connected\n\
                1 4 disconnected\n\
                1 4 disconnected\n\
                2 2 connected\n\
                0 3 connected\n";
    for extra in [&[][..], &["--threads", "4"][..]] {
        let mut args = vec!["serve", archive_str];
        args.extend_from_slice(extra);
        let mut child = cli()
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ftc-cli serve");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "serve {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(String::from_utf8_lossy(&out.stdout), want, "mode {extra:?}");
    }

    // Errors name the offending query.
    let mut child = cli()
        .args(["serve", archive_str])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(b"0 3 0:2\n").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no edge"));

    let _ = fs::remove_dir_all(&dir);
}

/// `update --journal` + `recover` round trip: the journaled update
/// leaves a committed archive, a rotated (empty) journal, and a
/// manifest; a hand-crafted crash state — journal records past the
/// watermark, torn tail, missing manifest — is replayed by `recover`
/// and lands in the archive.
#[test]
fn journaled_update_and_recover_round_trip() {
    use ftc::core::io::StdVfs;
    use ftc::core::store::LabelStoreView;
    use ftc::dyn_::journal::{scan_journal, FsyncPolicy, Journal, JournalOp};
    use ftc::dyn_::DynamicScheme;

    let dir = std::env::temp_dir().join(format!("ftc_cli_journal_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("cycle6.txt");
    fs::write(&graph_file, "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n").unwrap();
    let archive = dir.join("labels.ftc");
    let archive_str = archive.to_str().unwrap();
    assert!(
        run(&[
            "build",
            graph_file.to_str().unwrap(),
            archive_str,
            "--f",
            "2"
        ])
        .0
    );

    // Flag validation: --fsync without --journal, and compressed output.
    let ops_file = dir.join("ops.txt");
    fs::write(&ops_file, "+0 3  # chord\n-0 1\n+0 1\n").unwrap();
    let ops_str = ops_file.to_str().unwrap();
    let (ok, _, stderr) = run(&["update", archive_str, ops_str, "--fsync", "every_op"]);
    assert!(!ok);
    assert!(stderr.contains("--fsync only applies with --journal"));
    let (ok, _, stderr) = run(&[
        "update",
        archive_str,
        ops_str,
        "--journal",
        "--out",
        dir.join("out.ftcz").to_str().unwrap(),
    ]);
    assert!(!ok);
    assert!(stderr.contains("v1 output archive"), "stderr: {stderr}");

    // The journaled update commits and rotates in a fresh journal.
    let (ok, stdout, stderr) = run(&[
        "update",
        archive_str,
        ops_str,
        "--journal",
        "--fsync",
        "every_n:2",
        "--seed",
        "5",
    ]);
    assert!(ok, "journaled update failed: {stderr}");
    assert!(
        stdout.contains("committed watermark") && stdout.contains("fsync every_n:2"),
        "stdout: {stdout}"
    );
    let journal = dir.join("labels.ftc.ftcj");
    let manifest = dir.join("labels.ftc.manifest");
    assert!(journal.is_file() && manifest.is_file());
    let scan = scan_journal(&fs::read(&journal).unwrap()).unwrap();
    assert!(scan.records.is_empty(), "commit must rotate the journal");
    let (ok, stdout, _) = run(&["info", archive_str]);
    assert!(ok);
    assert!(stdout.contains("m 7"), "chord committed: {stdout}");

    // Craft a crash: a journal holding one un-checkpointed insert plus
    // a torn tail, with the manifest gone entirely.
    let bytes = fs::read(&archive).unwrap();
    let view = LabelStoreView::open(&bytes).unwrap();
    let scheme = DynamicScheme::from_archive(&view, 5).unwrap();
    assert!(!scheme.has_edge(1, 4));
    drop(scheme);
    let mut j = Journal::create(&StdVfs, &journal, scan.meta, FsyncPolicy::EveryOp).unwrap();
    j.append(JournalOp::Insert(1, 4)).unwrap();
    drop(j);
    let mut crashed = fs::read(&journal).unwrap();
    crashed.extend_from_slice(&[0xAB, 0xCD]); // mid-append power cut
    fs::write(&journal, &crashed).unwrap();
    fs::remove_file(&manifest).unwrap();

    let (ok, stdout, stderr) = run(&["recover", archive_str, "--seed", "5"]);
    assert!(ok, "recover failed: {stderr}");
    assert!(
        stdout.contains("1 replayed") && stdout.contains("torn tail truncated"),
        "stdout: {stdout}"
    );
    let (ok, stdout, _) = run(&["info", archive_str]);
    assert!(ok);
    assert!(
        stdout.contains("m 8"),
        "replayed insert committed: {stdout}"
    );
    assert!(manifest.is_file(), "recover must reseal the manifest");
    let rescan = scan_journal(&fs::read(&journal).unwrap()).unwrap();
    assert!(rescan.records.is_empty() && rescan.torn_at.is_none());

    // The recovered archive answers queries.
    let (ok, stdout, _) = run(&["query", archive_str, "1", "4", "--fault", "1:2"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "connected");

    // Wrong seed: lineage mismatch is a typed refusal.
    let (ok, _, stderr) = run(&["recover", archive_str, "--seed", "6"]);
    assert!(!ok);
    assert!(stderr.contains("lineage"), "stderr: {stderr}");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    let (ok, _, stderr) = run(&["build", "/nonexistent/file.txt", "/tmp/nowhere.ftc"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let (ok, _, stderr) = run(&["query", "/nonexistent.ftc", "0", "1"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read archive"));

    let (ok, _, stderr) = run(&["info", "/nonexistent.ftc"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read archive"));
}

#[test]
fn cli_rejects_unknown_fault_edges_vertices_and_corrupt_archives() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_test2_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("path.txt");
    fs::write(&graph_file, "0 1\n1 2\n").unwrap();
    let archive = dir.join("labels.ftc");
    let archive_str = archive.to_str().unwrap();
    assert!(run(&["build", graph_file.to_str().unwrap(), archive_str]).0);

    let (ok, _, stderr) = run(&["query", archive_str, "0", "2", "--fault", "0:2"]);
    assert!(!ok);
    assert!(stderr.contains("no edge"));

    // Unknown faults error even when every query pair answers trivially
    // (same-vertex pairs never build a session, but faults are resolved
    // eagerly).
    let (ok, _, stderr) = run(&["query", archive_str, "0", "0", "--fault", "0:2"]);
    assert!(!ok);
    assert!(stderr.contains("no edge"));

    let (ok, _, stderr) = run(&["query", archive_str, "0", "9"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"));

    // A truncated archive is rejected with a byte offset, not a panic.
    let blob = fs::read(&archive).unwrap();
    let truncated = dir.join("truncated.ftc");
    fs::write(&truncated, &blob[..blob.len() / 2]).unwrap();
    let (ok, _, stderr) = run(&["info", truncated.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("byte"), "stderr: {stderr}");

    let _ = fs::remove_dir_all(&dir);
}

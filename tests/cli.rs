//! End-to-end test of the `ftc-cli` binary: build labels from an edge-list
//! file, then answer queries from the stored labels.

use std::fs;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftc-cli"))
}

fn run(args: &[&str]) -> (bool, String, String) {
    let out = cli().args(args).output().expect("spawn ftc-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn build_info_query_round_trip() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_test_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("cycle6.txt");
    // A 6-cycle with comments and blank lines.
    fs::write(
        &graph_file,
        "# six cycle\n0 1\n1 2\n2 3\n\n3 4\n4 5\n5 0  # closing edge\n",
    )
    .unwrap();
    let out_dir = dir.join("labels");
    let out_str = out_dir.to_str().unwrap();

    let (ok, stdout, stderr) = run(&["build", graph_file.to_str().unwrap(), out_str, "--f", "2"]);
    assert!(ok, "build failed: {stderr}");
    assert!(stdout.contains("wrote labels"), "stdout: {stdout}");

    let (ok, stdout, _) = run(&["info", out_str]);
    assert!(ok);
    assert!(stdout.contains("n 6") && stdout.contains("m 6") && stdout.contains("f 2"));

    // One fault: still connected around the cycle.
    let (ok, stdout, _) = run(&["query", out_str, "0", "3", "--fault", "0:1"]);
    assert!(ok);
    assert_eq!(stdout.trim(), "connected");

    // Two faults cutting vertex 0's arc.
    let (ok, stdout, _) = run(&[
        "query", out_str, "1", "4", "--fault", "0:1", "--fault", "3:4",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "disconnected");

    // Fault given in reversed endpoint order resolves too.
    let (ok, stdout, _) = run(&[
        "query", out_str, "1", "4", "--fault", "1:0", "--fault", "4:3",
    ]);
    assert!(ok);
    assert_eq!(stdout.trim(), "disconnected");

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cli_error_paths() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));

    let (ok, _, stderr) = run(&["build", "/nonexistent/file.txt", "/tmp/nowhere_ftc"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let (ok, _, stderr) = run(&["query", "/nonexistent_dir_ftc", "0", "1"]);
    assert!(!ok);
    assert!(!stderr.is_empty());

    let (ok, _, stderr) = run(&["info", "/nonexistent_dir_ftc"]);
    assert!(!ok);
    assert!(stderr.contains("meta.txt"));
}

#[test]
fn cli_rejects_unknown_fault_edges_and_vertices() {
    let dir = std::env::temp_dir().join(format!("ftc_cli_test2_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let graph_file = dir.join("path.txt");
    fs::write(&graph_file, "0 1\n1 2\n").unwrap();
    let out = dir.join("labels");
    let out_str = out.to_str().unwrap();
    assert!(run(&["build", graph_file.to_str().unwrap(), out_str]).0);

    let (ok, _, stderr) = run(&["query", out_str, "0", "2", "--fault", "0:2"]);
    assert!(!ok);
    assert!(stderr.contains("no edge"));

    let (ok, _, stderr) = run(&["query", out_str, "0", "9"]);
    assert!(!ok);
    assert!(stderr.contains("out of range"));

    let _ = fs::remove_dir_all(&dir);
}

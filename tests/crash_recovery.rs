//! Crash-recovery differential test against the real binary: a child
//! `ftc-cli update --journal --fsync every_op` process is `kill -9`ed
//! at seeded points across many rounds, and each surviving disk is
//! recovered and checked against an independent model. The model is
//! the durability contract itself: the surviving archive is always a
//! complete generation (atomic writes — [`LabelStoreView::open`] must
//! succeed), the journal scans cleanly (a torn final record is the
//! only legal damage), and the recovered edge set equals the archive's
//! edge set with every journal record applied in order as a
//! postcondition (insert ⇒ present, delete ⇒ absent). Connectivity of
//! the recovered labeling is then swept differentially against a
//! BFS-backed [`ConnectivityOracle`] of that edge set.
//!
//! Debug builds skip this (the child runs unoptimized commits); CI
//! runs it in release.

#![cfg(unix)]

use ftc::core::store::LabelStoreView;
use ftc::dyn_::journal::{scan_journal, JournalOp};
use ftc::dyn_::DynamicScheme;
use ftc::graph::connectivity::ConnectivityOracle;
use ftc::graph::Graph;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;
use std::process::Command;
use std::time::{Duration, Instant};

const N: usize = 300;
const OPS: usize = 400;
const ROUNDS: usize = 12;

fn rng_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ftc-cli"))
}

/// Edge set of a v1 archive, through the same reconstruction path
/// recovery uses (seed 0 matches the CLI default).
fn archive_edges(path: &Path) -> BTreeSet<(usize, usize)> {
    let bytes = fs::read(path).expect("surviving archive must be readable");
    let view = LabelStoreView::open(&bytes)
        .expect("surviving archive must re-validate from raw bytes (atomic writes)");
    let scheme = DynamicScheme::from_archive(&view, 0).expect("archive must reconstruct");
    scheme.edge_pairs().collect()
}

fn norm(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

#[test]
#[cfg_attr(debug_assertions, ignore = "kill -9 crash rounds; run in release")]
fn killed_journaled_updates_recover_without_loss() {
    let dir = std::env::temp_dir().join(format!("ftc_crash_recovery_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();

    // Base graph: a ring plus seeded chords, written as an edge list and
    // built into the base archive by the real binary.
    let mut rng: u64 = 0xC4A5_11FE;
    let mut base_set: BTreeSet<(usize, usize)> = BTreeSet::new();
    for v in 0..N {
        base_set.insert(norm(v, (v + 1) % N));
    }
    while base_set.len() < N + N / 2 {
        let (u, v) = (
            rng_next(&mut rng) as usize % N,
            rng_next(&mut rng) as usize % N,
        );
        if u != v {
            base_set.insert(norm(u, v));
        }
    }
    let graph_file = dir.join("base.txt");
    let edge_list: String = base_set
        .iter()
        .map(|&(u, v)| format!("{u} {v}\n"))
        .collect();
    fs::write(&graph_file, edge_list).unwrap();
    let base = dir.join("base.ftc");
    let out = cli()
        .args([
            "build",
            graph_file.to_str().unwrap(),
            base.to_str().unwrap(),
            "--f",
            "2",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "base build failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A seeded toggle stream that is valid when applied in order from
    // the base: insert absent pairs, delete present ones.
    let mut model = base_set.clone();
    let mut ops_text = String::new();
    for _ in 0..OPS {
        loop {
            let (u, v) = (
                rng_next(&mut rng) as usize % N,
                rng_next(&mut rng) as usize % N,
            );
            if u == v {
                continue;
            }
            let e = norm(u, v);
            if model.remove(&e) {
                ops_text.push_str(&format!("-{} {}\n", e.0, e.1));
            } else {
                model.insert(e);
                ops_text.push_str(&format!("+{} {}\n", e.0, e.1));
            }
            break;
        }
    }
    let ops_file = dir.join("ops.txt");
    fs::write(&ops_file, ops_text).unwrap();

    let work = dir.join("work.ftc");
    let journal = dir.join("work.ftc.ftcj");
    let manifest = dir.join("work.ftc.manifest");
    let spawn_update = |dir: &Path| {
        cli()
            .current_dir(dir)
            .args([
                "update",
                work.to_str().unwrap(),
                ops_file.to_str().unwrap(),
                "--journal",
                "--fsync",
                "every_op",
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn ftc-cli update")
    };

    // Calibration rounds: run to completion twice (runtimes vary with
    // fsync latency — keep the shorter), and pin the happy path: the
    // committed archive must hold exactly the final model.
    let mut full_run = Duration::MAX;
    for _ in 0..2 {
        let _ = fs::remove_file(&journal);
        let _ = fs::remove_file(&manifest);
        fs::copy(&base, &work).unwrap();
        let started = Instant::now();
        let mut child = spawn_update(&dir);
        let status = child.wait().unwrap();
        full_run = full_run.min(started.elapsed());
        assert!(status.success(), "uninterrupted update must succeed");
    }
    assert_eq!(
        archive_edges(&work),
        model,
        "uninterrupted update must commit the final edge set"
    );
    let scan = scan_journal(&fs::read(&journal).unwrap()).unwrap();
    assert!(
        scan.records.is_empty() && scan.torn_at.is_none(),
        "commit must rotate in a fresh journal"
    );

    let mut interrupted = 0;
    for round in 0..ROUNDS {
        let _ = fs::remove_file(&journal);
        let _ = fs::remove_file(&manifest);
        fs::copy(&base, &work).unwrap();

        // Kill at a seeded point inside the fastest observed full-run
        // window (early rounds hit the initial checkpoint, late rounds
        // the journaled op stream and final commit).
        let frac = (rng_next(&mut rng) % 1000) as f64 / 1000.0;
        let delay = full_run.mul_f64(frac * 0.95);
        let mut child = spawn_update(&dir);
        std::thread::sleep(delay.max(Duration::from_millis(1)));
        let _ = child.kill(); // SIGKILL: no destructors, no flushes
        let killed = child.wait().unwrap();
        if !killed.success() {
            interrupted += 1;
        }

        // The surviving archive is always complete and reconstructible.
        let survivor = archive_edges(&work);

        if !journal.exists() {
            // Killed before the initial checkpoint finished: the archive
            // is the base copy or the re-committed base, nothing more.
            assert_eq!(survivor, base_set, "round {round}: pre-journal state");
            continue;
        }

        // Independent recovery model: the journal must scan cleanly
        // (torn tail allowed, interior corruption never), and each
        // record fixes its edge's membership to its postcondition.
        let scan = scan_journal(&fs::read(&journal).unwrap())
            .unwrap_or_else(|e| panic!("round {round}: interior journal corruption: {e}"));
        let mut expected = survivor.clone();
        for rec in &scan.records {
            match rec.op {
                JournalOp::Insert(u, v) => {
                    expected.insert(norm(u as usize, v as usize));
                }
                JournalOp::Delete(u, v) => {
                    expected.remove(&norm(u as usize, v as usize));
                }
                JournalOp::Rebuild => {}
            }
        }

        let out = cli()
            .args(["recover", work.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "round {round}: recover failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );

        // Zero divergence: the recovered archive holds exactly the
        // modeled edge set, and its journal is rotated clean.
        let recovered = archive_edges(&work);
        assert_eq!(recovered, expected, "round {round}: recovered edge set");
        let rescan = scan_journal(&fs::read(&journal).unwrap()).unwrap();
        assert!(
            rescan.records.is_empty() && rescan.torn_at.is_none(),
            "round {round}: recover must reseal with a fresh journal"
        );

        // Differential connectivity sweep of the recovered labeling
        // against a BFS oracle of the modeled edge set.
        let live: Vec<(usize, usize)> = expected.iter().copied().collect();
        let g = Graph::from_edges(N, &live);
        let mut oracle = ConnectivityOracle::new(&g);
        let bytes = fs::read(&work).unwrap();
        let view = LabelStoreView::open(&bytes).unwrap();
        let mut scheme = DynamicScheme::from_archive(&view, 0).unwrap();
        let service = scheme.commit_service();
        let queries: Vec<(usize, usize)> = (0..32)
            .map(|_| {
                (
                    rng_next(&mut rng) as usize % N,
                    rng_next(&mut rng) as usize % N,
                )
            })
            .collect();
        let mut fault_sets: Vec<Vec<(usize, usize)>> = vec![vec![]];
        for _ in 0..4 {
            let a = live[rng_next(&mut rng) as usize % live.len()];
            let b = live[rng_next(&mut rng) as usize % live.len()];
            fault_sets.push(if a == b { vec![a] } else { vec![a, b] });
        }
        for faults in &fault_sets {
            oracle.prepare_pairs(faults);
            let answers = service
                .query(faults, &queries)
                .expect("decode within budget");
            for (&(s, t), got) in queries.iter().zip(&answers) {
                assert_eq!(
                    got,
                    oracle.connected(s, t),
                    "round {round}: faults {faults:?}, pair ({s},{t})"
                );
            }
        }
    }

    assert!(
        interrupted >= ROUNDS / 2,
        "too few rounds actually killed the child ({interrupted}/{ROUNDS}); \
         the seeded delays are not exercising crash windows"
    );

    let _ = fs::remove_dir_all(&dir);
}

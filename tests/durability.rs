//! Durability validation on the simulated disk: the atomic-write
//! contract under seeded fault injection, and full crash-recovery of a
//! [`DurableScheme`] from a power cut at *every* recorded trace
//! boundary. Each crash image is remounted as a fresh [`SimVfs`] and
//! recovered; the recovered edge set must be one of the states the op
//! stream actually passed through (crash consistency), and a crash
//! after quiescence must lose nothing (durability of acknowledged
//! ops).

use ftc::core::io::{write_atomic, FaultConfig, SimVfs, Vfs};
use ftc::dyn_::{default_journal_path, DurableScheme, DynConfig, DynamicScheme, FsyncPolicy};
use ftc::graph::generators;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Under injected short writes, fsync failures, and rename failures,
/// the destination of an atomic write is always a *complete* payload —
/// the old one or the new one, never a torn mix — both in the live view
/// and in every simulated post-crash disk.
#[test]
fn faulty_vfs_never_tears_an_atomic_destination() {
    let dst = Path::new("dst");
    for seed in 0..6u64 {
        let vfs = SimVfs::with_faults(FaultConfig {
            seed,
            short_write_per_mille: 250,
            fail_fsync_per_mille: 250,
            fail_rename_per_mille: 250,
        });
        // Distinguishable payloads: any byte of payload i differs from
        // any byte of payload j, and lengths differ too.
        let payloads: Vec<Vec<u8>> = (0..40).map(|i| vec![i as u8; 40 + i]).collect();
        let mut attempted: Vec<&[u8]> = Vec::new();
        let mut failures = 0;
        for payload in &payloads {
            attempted.push(payload);
            let ok = write_atomic(&vfs, dst, payload).is_ok();
            failures += usize::from(!ok);
            match vfs.read(dst) {
                Ok(live) => {
                    if ok {
                        // A successful commit is immediately visible.
                        assert_eq!(live, *payload, "seed {seed}");
                    } else {
                        // A failed write may or may not have replaced the
                        // destination (the rename can land before a failed
                        // directory fsync) — but never partially.
                        assert!(
                            attempted.contains(&live.as_slice()),
                            "seed {seed}: torn live destination {live:?}"
                        );
                    }
                }
                Err(_) => assert!(
                    !ok && failures == attempted.len(),
                    "seed {seed}: destination vanished after a successful write"
                ),
            }
        }
        assert!(vfs.injected_faults() > 0, "seed {seed} injected nothing");
        // Every power-cut image at every boundary: complete old or
        // complete new, never torn.
        for boundary in 0..=vfs.trace_len() {
            for image in vfs.crash_images(boundary, seed) {
                if let Some(got) = image.get(dst) {
                    assert!(
                        payloads.iter().any(|p| p == got),
                        "seed {seed}, boundary {boundary}: torn crash image {got:?}"
                    );
                }
            }
        }
    }
}

fn edge_set(scheme: &DynamicScheme) -> BTreeSet<(usize, usize)> {
    scheme.edge_pairs().collect()
}

/// A journaled workload on the simulated disk, power-cut at every trace
/// boundary under three persistence brackets (durable-only, flushed,
/// seeded mix). Every image must recover — no crash window bricks the
/// pair of files — and the recovered edge set must be exactly one of
/// the states the op stream passed through. The quiescent (fully
/// synced) disk must recover to the final state: acknowledged ops are
/// never lost.
#[test]
fn recovery_from_every_power_cut_boundary_is_a_valid_prefix_state() {
    const SEED: u64 = 11;
    let g = generators::random_connected(24, 30, SEED);
    let mut cfg = DynConfig::new(2, 12);
    cfg.seed = SEED;
    let scheme = DynamicScheme::new(&g, cfg).unwrap();

    let vfs = Arc::new(SimVfs::new());
    let archive = PathBuf::from("g.ftc");
    let journal = default_journal_path(&archive);
    let mut d = DurableScheme::create(
        Arc::clone(&vfs) as Arc<dyn Vfs>,
        &archive,
        &journal,
        scheme,
        FsyncPolicy::EveryOp,
    )
    .unwrap();
    // The durability guarantee starts once `create` has returned; the
    // boundaries before that describe a scheme that never existed.
    let base_trace = vfs.trace_len();

    // Scripted toggle stream with a mid-stream checkpoint: every state
    // the in-memory scheme passes through is a legal recovery target.
    let mut states: Vec<BTreeSet<(usize, usize)>> = vec![edge_set(d.scheme())];
    for i in 0..14usize {
        let (u, v) = (i % 24, (i * 7 + 3) % 24);
        if u == v {
            continue;
        }
        if d.scheme().has_edge(u, v) {
            d.delete_edge(u, v).unwrap();
        } else {
            d.insert_edge(u, v).unwrap();
        }
        states.push(edge_set(d.scheme()));
        if i == 6 {
            d.commit().unwrap();
        }
    }
    let final_state = states.last().cloned().unwrap();
    d.commit().unwrap();
    drop(d);

    for boundary in base_trace..=vfs.trace_len() {
        for cut_seed in [1u64, 2] {
            for (which, image) in vfs.crash_images(boundary, cut_seed).into_iter().enumerate() {
                let disk = Arc::new(SimVfs::from_image(&image));
                let (rec, stats) = DurableScheme::recover(
                    disk as Arc<dyn Vfs>,
                    &archive,
                    &journal,
                    SEED,
                    FsyncPolicy::EveryOp,
                )
                .unwrap_or_else(|e| {
                    panic!("boundary {boundary} image {which} cut {cut_seed}: {e}")
                });
                let got = edge_set(rec.scheme());
                assert!(
                    states.contains(&got),
                    "boundary {boundary} image {which} cut {cut_seed}: \
                     recovered set is not a prefix state (stats {stats:?})"
                );
            }
        }
    }

    // Quiescent disk (everything synced): recovery is lossless, and the
    // resealed state recovers identically a second time.
    let image = &vfs.crash_images(vfs.trace_len(), 0)[0];
    let disk = Arc::new(SimVfs::from_image(image));
    let (rec, stats) = DurableScheme::recover(
        Arc::clone(&disk) as Arc<dyn Vfs>,
        &archive,
        &journal,
        SEED,
        FsyncPolicy::EveryOp,
    )
    .unwrap();
    assert_eq!(edge_set(rec.scheme()), final_state, "{stats:?}");
    drop(rec);
    let (again, stats2) = DurableScheme::recover(
        disk as Arc<dyn Vfs>,
        &archive,
        &journal,
        SEED,
        FsyncPolicy::EveryOp,
    )
    .unwrap();
    assert_eq!(edge_set(again.scheme()), final_state);
    assert_eq!(stats2.replayed, 0, "reseal must leave an empty journal");
}

//! Differential churn validation of `ftc-dyn` at serving scale: a
//! 20 000-vertex graph absorbs a seeded stream of edge insertions and
//! deletions (chord churn on the fast path, tree-edge deletions through
//! the structural rebuild), and every few operations the scheme commits.
//! Each committed archive is re-validated from its raw bytes by a fresh
//! [`LabelStoreView::open`] — the patch writer gets no trusted-path
//! shortcut here — then swapped into a [`ServiceRegistry`] (generations
//! must advance) and queried against the BFS-backed
//! [`ConnectivityOracle`] tracking the same churn. A final sweep pins the
//! churned scheme differentially equal to a from-scratch
//! [`DynamicScheme`] of the ending edge set.
//!
//! Debug builds skip this (O(minutes) unoptimized); CI runs it in
//! release.

use ftc::core::store::LabelStoreView;
use ftc::dyn_::{DynConfig, DynamicScheme};
use ftc::graph::connectivity::ConnectivityOracle;
use ftc::graph::{generators, Graph};
use ftc::serve::{ConnectivityService, ServiceRegistry};

const N: usize = 20_000;

fn rng_next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

/// Queries `service` and `oracle` over the same pair/fault sweep and
/// asserts they agree everywhere.
fn differential_sweep(
    service: &ConnectivityService,
    oracle: &mut ConnectivityOracle<'_>,
    live: &[(usize, usize)],
    rng: &mut u64,
) {
    let queries: Vec<(usize, usize)> = (0..48)
        .map(|_| (rng_next(rng) as usize % N, rng_next(rng) as usize % N))
        .collect();
    let mut fault_sets: Vec<Vec<(usize, usize)>> = vec![vec![]];
    for _ in 0..8 {
        let a = live[rng_next(rng) as usize % live.len()];
        let b = live[rng_next(rng) as usize % live.len()];
        fault_sets.push(vec![a]);
        if a != b {
            fault_sets.push(vec![a, b]);
        }
    }
    for faults in &fault_sets {
        oracle.prepare_pairs(faults);
        let answers = service
            .query(faults, &queries)
            .expect("decode within budget");
        for (&(s, t), got) in queries.iter().zip(&answers) {
            assert_eq!(
                got,
                oracle.connected(s, t),
                "faults {faults:?}, pair ({s},{t})"
            );
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "large differential churn; run in release")]
fn dynamic_churn_matches_oracle_at_scale() {
    let g = generators::random_connected(N, 10_000, 4242);
    let mut cfg = DynConfig::new(2, 24);
    cfg.seed = 4242;
    let mut scheme = DynamicScheme::new(&g, cfg).unwrap();
    let mut oracle = ConnectivityOracle::new(&g);
    let mut live: Vec<(usize, usize)> = scheme.edge_pairs().collect();

    let registry = ServiceRegistry::new();
    let mut last_gen = registry.swap("churn", scheme.commit_service());
    let mut rng: u64 = 0x5EED_CAFE;

    for round in 1..=24 {
        // Delete one random live edge (tree edges land in the structural
        // slow path, chords in the XOR fast path) ...
        let victim = live.swap_remove(rng_next(&mut rng) as usize % live.len());
        scheme.delete_edge(victim.0, victim.1).unwrap();
        assert!(oracle.remove_edge(victim.0, victim.1));
        // ... and insert one random absent pair. Both stay connected with
        // overwhelming probability at this density, but the scheme does
        // not rely on it (a component merge is just another rebuild).
        loop {
            let (u, v) = (
                rng_next(&mut rng) as usize % N,
                rng_next(&mut rng) as usize % N,
            );
            if u == v || scheme.has_edge(u, v) {
                continue;
            }
            scheme.insert_edge(u, v).unwrap();
            oracle.add_edge(u, v);
            live.push((u.min(v), u.max(v)));
            break;
        }

        if round % 6 == 0 {
            // Commit, byte-validate from scratch, swap into the registry,
            // and differentially verify the served answers.
            let store = scheme.commit();
            let fresh = LabelStoreView::open(store.as_bytes())
                .expect("patched archive must re-validate from raw bytes");
            assert_eq!(fresh.n(), N);
            assert_eq!(fresh.m(), live.len());
            let generation = registry.swap("churn", ConnectivityService::from_store(store));
            assert!(generation > last_gen, "registry generations must advance");
            last_gen = generation;
            let service = registry.get("churn").unwrap();
            differential_sweep(&service, &mut oracle, &live, &mut rng);
        }
    }

    let stats = scheme.stats();
    assert!(stats.incremental_ops > 0, "{stats:?}");
    assert!(
        stats.structural_rebuilds >= 1,
        "the seeded stream must hit at least one tree-edge deletion: {stats:?}"
    );

    // The churned scheme must be differentially equal to a from-scratch
    // dynamic build of the ending edge set (the archives themselves may
    // order rows and draw levels differently).
    let ending = Graph::from_edges(N, &live);
    let mut rebuilt = DynamicScheme::new(&ending, cfg).unwrap();
    let churned_service = scheme.commit_service();
    let rebuilt_service = rebuilt.commit_service();
    let mut ending_oracle = ConnectivityOracle::new(&ending);
    let mut rng2 = rng;
    differential_sweep(&churned_service, &mut ending_oracle, &live, &mut rng);
    differential_sweep(&rebuilt_service, &mut ending_oracle, &live, &mut rng2);
}

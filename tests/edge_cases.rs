//! Edge-case integration tests: parallel edges, spanning-tree choice
//! independence, and label accessor semantics.

use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, Graph, RootedTree};

#[test]
fn parallel_edges_are_distinct_faults() {
    // Two vertices joined by two parallel edges plus a long detour:
    // failing ONE parallel edge keeps the pair adjacent; failing both
    // forces the detour; failing both plus the detour disconnects.
    let mut g = Graph::new(4);
    let e_a = g.add_edge(0, 1);
    let e_b = g.add_edge(0, 1); // parallel twin
    let e_c = g.add_edge(1, 2);
    let e_d = g.add_edge(2, 3);
    let e_e = g.add_edge(3, 0);
    let scheme = FtcScheme::build(&g, &Params::deterministic(3)).unwrap();
    let l = scheme.labels();

    let one = l.session([l.edge_label_by_id(e_a)]).unwrap();
    assert_eq!(
        one.connected(l.vertex_label(0), l.vertex_label(1)),
        Ok(true)
    );

    let both = l
        .session([l.edge_label_by_id(e_a), l.edge_label_by_id(e_b)])
        .unwrap();
    assert_eq!(
        both.connected(l.vertex_label(0), l.vertex_label(1)),
        Ok(true)
    ); // detour

    let all = l
        .session([
            l.edge_label_by_id(e_a),
            l.edge_label_by_id(e_b),
            l.edge_label_by_id(e_c),
        ])
        .unwrap();
    assert_eq!(
        all.connected(l.vertex_label(0), l.vertex_label(1)),
        Ok(false)
    );
    // Oracle agreement on the full single+pair sweep.
    for a in 0..g.m() {
        for b in a..g.m() {
            let fset: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };
            let session = l
                .session(fset.iter().map(|&e| l.edge_label_by_id(e)))
                .unwrap();
            for s in 0..4 {
                for t in 0..4 {
                    let got = session
                        .connected(l.vertex_label(s), l.vertex_label(t))
                        .unwrap();
                    assert_eq!(got, connectivity::connected_avoiding(&g, s, t, &fset));
                }
            }
        }
    }
    let _ = (e_d, e_e);
}

#[test]
fn scheme_is_correct_under_any_spanning_tree() {
    // The framework fixes an *arbitrary* rooted spanning tree; answers
    // must not depend on the choice. Build with BFS and DFS trees from
    // several roots and compare against the oracle.
    let g = Graph::torus(3, 3);
    for root in [0usize, 4, 8] {
        for tree in [RootedTree::bfs(&g, root), RootedTree::dfs(&g, root)] {
            let scheme = FtcScheme::build_with_tree(&g, &tree, &Params::deterministic(2)).unwrap();
            let l = scheme.labels();
            for a in (0..g.m()).step_by(2) {
                for b in ((a + 1)..g.m()).step_by(3) {
                    let session = l
                        .session([l.edge_label_by_id(a), l.edge_label_by_id(b)])
                        .unwrap();
                    for s in 0..g.n() {
                        for t in 0..g.n() {
                            let got = session
                                .connected(l.vertex_label(s), l.vertex_label(t))
                                .unwrap();
                            assert_eq!(
                                got,
                                connectivity::connected_avoiding(&g, s, t, &[a, b]),
                                "root {root}, ({s},{t},[{a},{b}])"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn edge_label_lookup_semantics() {
    let g = Graph::path(3);
    let scheme = FtcScheme::build(&g, &Params::deterministic(1)).unwrap();
    let l = scheme.labels();
    // Symmetric lookup, missing edges, and by-id access agree.
    assert!(l.edge_label(0, 1).is_some());
    assert_eq!(l.edge_label(0, 1), l.edge_label(1, 0));
    assert!(l.edge_label(0, 2).is_none());
    assert!(l.edge_label(0, 99).is_none());
    assert_eq!(l.edge_label(1, 2).unwrap(), l.edge_label_by_id(1));
    assert_eq!(l.n(), 3);
    assert_eq!(l.m(), 2);
    assert_eq!(l.edge_labels().count(), 2);
}

#[test]
fn star_graph_hub_isolation() {
    // A star: every edge is a bridge; cutting spoke i isolates leaf i.
    let n = 9;
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    for spoke in 0..g.m() {
        let leaf = spoke + 1;
        let session = l.session([l.edge_label_by_id(spoke)]).unwrap();
        for v in 0..n {
            let got = session
                .connected(l.vertex_label(leaf), l.vertex_label(v))
                .unwrap();
            assert_eq!(got, v == leaf);
        }
    }
}

//! Cross-crate integration tests: every labeling backend against the
//! ground-truth oracle over multiple graph families, plus failure
//! injection.

use ftc::core::{FtcScheme, HierarchyBackend, Params, QueryError, ThresholdPolicy};
use ftc::graph::{connectivity, generators, Graph};

/// All (s, t) pairs for a sweep of fault sets, checked against the oracle.
fn check(g: &Graph, params: &Params, fault_sets: &[Vec<usize>]) {
    let scheme = FtcScheme::build(g, params).unwrap();
    let l = scheme.labels();
    for fset in fault_sets {
        let session = l
            .session(fset.iter().map(|&e| l.edge_label_by_id(e)))
            .unwrap_or_else(|e| panic!("session for {fset:?} failed: {e}"));
        for s in 0..g.n() {
            for t in 0..g.n() {
                let got = session
                    .connected(l.vertex_label(s), l.vertex_label(t))
                    .unwrap_or_else(|e| panic!("({s},{t},{fset:?}) failed: {e}"));
                let want = connectivity::connected_avoiding(g, s, t, fset);
                assert_eq!(got, want, "({s},{t},F={fset:?}) {:?}", params.backend);
            }
        }
    }
}

fn all_singletons_and_pairs(m: usize, stride: usize) -> Vec<Vec<usize>> {
    let mut out = vec![vec![]];
    out.extend((0..m).map(|e| vec![e]));
    for a in (0..m).step_by(stride) {
        for b in ((a + 1)..m).step_by(stride) {
            out.push(vec![a, b]);
        }
    }
    out
}

#[test]
fn torus_all_backends_exhaustive_pairs() {
    let g = Graph::torus(3, 3);
    let sets = all_singletons_and_pairs(g.m(), 1);
    for params in [
        Params::deterministic(2),
        Params::deterministic_poly(2),
        Params::randomized(2, 99),
    ] {
        check(&g, &params, &sets);
    }
}

#[test]
fn triple_faults_on_hypercube() {
    let g = Graph::hypercube(3);
    let mut sets = vec![vec![]];
    for a in 0..g.m() {
        for b in (a + 1)..g.m() {
            for c in (b + 1)..g.m() {
                if (a + b + c) % 7 == 0 {
                    sets.push(vec![a, b, c]);
                }
            }
        }
    }
    check(&g, &Params::deterministic(3), &sets);
}

#[test]
fn sparse_random_graphs_random_faults() {
    for seed in 0..4u64 {
        let g = generators::random_connected(18, 10, seed);
        let sets: Vec<Vec<usize>> = (0..12)
            .map(|i| generators::random_fault_set(&g, 2, seed * 100 + i))
            .collect();
        check(&g, &Params::deterministic(2), &sets);
        check(&g, &Params::randomized(2, seed), &sets);
    }
}

#[test]
fn bridge_heavy_graphs() {
    // Trees plus barbells: every fault matters.
    let g = Graph::barbell(4);
    let sets = all_singletons_and_pairs(g.m(), 1);
    check(&g, &Params::deterministic(2), &sets);

    let tree = generators::random_tree(16, 5);
    let sets = all_singletons_and_pairs(tree.m(), 2);
    check(&tree, &Params::deterministic(2), &sets);
}

#[test]
fn disconnected_multi_component_graphs() {
    let mut g = Graph::new(11);
    // Component A: cycle 0..4; component B: path 5..8; isolated: 9, 10.
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5);
    }
    g.add_edge(5, 6);
    g.add_edge(6, 7);
    g.add_edge(7, 8);
    let sets = all_singletons_and_pairs(g.m(), 1);
    check(&g, &Params::deterministic(2), &sets);
}

#[test]
fn duplicate_and_cross_component_faults() {
    let g = Graph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (6, 7)]);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    // Duplicate fault labels collapse to one.
    let e0 = l.edge_label_by_id(0);
    let dup = l.session([e0, e0, e0]).unwrap();
    assert_eq!(dup.num_faults(), 1);
    assert_eq!(
        dup.connected(l.vertex_label(0), l.vertex_label(1)),
        Ok(true)
    );
    // Faults in another component do not affect the query.
    let far = l.edge_label_by_id(3);
    let cross = l.session([e0, far]).unwrap();
    assert_eq!(
        cross.connected(l.vertex_label(0), l.vertex_label(2)),
        Ok(true)
    );
    assert_eq!(
        cross.connected(l.vertex_label(6), l.vertex_label(7)),
        Ok(true)
    );
    let bridge67 = l.edge_label(6, 7).unwrap();
    let bridged = l.session([bridge67]).unwrap();
    assert_eq!(
        bridged.connected(l.vertex_label(6), l.vertex_label(7)),
        Ok(false)
    );
}

#[test]
fn fault_budget_enforced_exactly() {
    let g = Graph::complete(6);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    match l.session((0..3).map(|e| l.edge_label_by_id(e))) {
        Err(QueryError::TooManyFaults {
            supplied: 3,
            budget: 2,
        }) => {}
        other => panic!("expected budget violation, got {other:?}"),
    }
}

#[test]
fn calibrated_mode_on_larger_graph() {
    // A larger instance than theory constants allow, with a calibrated
    // threshold: answers must be correct-or-error, never wrong.
    let g = generators::random_connected(60, 120, 8);
    let params = Params {
        f: 3,
        backend: HierarchyBackend::EpsNet,
        threshold: ThresholdPolicy::Fixed(48),
    };
    let scheme = FtcScheme::build(&g, &params).unwrap();
    let l = scheme.labels();
    let mut failures = 0usize;
    let mut total = 0usize;
    for i in 0..40u64 {
        let fset = generators::random_fault_set(&g, 3, 1000 + i);
        let queries = (0..g.n()).step_by(5).count() * (0..g.n()).step_by(7).count();
        match l.session(fset.iter().map(|&e| l.edge_label_by_id(e))) {
            Err(QueryError::OutdetectFailed) => {
                total += queries;
                failures += queries;
            }
            Err(e) => panic!("unexpected {e}"),
            Ok(session) => {
                for s in (0..g.n()).step_by(5) {
                    for t in (0..g.n()).step_by(7) {
                        total += 1;
                        let got = session
                            .connected(l.vertex_label(s), l.vertex_label(t))
                            .expect("matching headers");
                        assert_eq!(got, connectivity::connected_avoiding(&g, s, t, &fset));
                    }
                }
            }
        }
    }
    assert!(
        failures * 10 < total,
        "calibrated failure rate too high: {failures}/{total}"
    );
}

#[test]
fn randomized_scheme_different_seeds_agree() {
    let g = generators::random_connected(20, 24, 3);
    let sets: Vec<Vec<usize>> = (0..8)
        .map(|i| generators::random_fault_set(&g, 2, i))
        .collect();
    for seed in [1u64, 2, 3] {
        check(&g, &Params::randomized(2, seed), &sets);
    }
}

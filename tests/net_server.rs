//! Loopback integration tests for the `ftc::net` TCP serving subsystem:
//! concurrent clients checked against the BFS oracle across multiple
//! registered graphs, malformed / truncated / oversized frames on raw
//! sockets, typed error codes, registry eviction under live traffic,
//! and graceful shutdown drain.

use ftc::core::store::{EdgeEncoding, LabelStore};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators, Graph};
use ftc::net::client::{Client, ClientError};
use ftc::net::proto::{self, ErrorCode, ResponseBody, MAX_FRAME_BYTES};
use ftc::net::server::{Server, ServerConfig, ServerHandle};
use ftc::serve::{ConnectivityService, ServiceRegistry};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Builds an archive-backed service for `g` (the production serving
/// path: labels → blob → zero-copy views).
fn service_of(g: &Graph, f: usize) -> ConnectivityService {
    let scheme = FtcScheme::build(g, &Params::deterministic(f)).unwrap();
    let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full);
    ConnectivityService::from_archive_bytes(blob).unwrap()
}

fn spawn(
    registry: Arc<ServiceRegistry>,
) -> (ServerHandle, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            read_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Reads one length-prefixed frame payload off a raw socket.
fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).ok()?;
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    stream.read_exact(&mut payload).ok()?;
    Some(payload)
}

/// Concurrent clients routing to two registered graphs; every answer is
/// checked against a BFS oracle computed from the graphs directly.
#[test]
fn concurrent_clients_match_bfs_oracle_across_graphs() {
    let g1 = generators::random_connected(40, 60, 1);
    let g2 = Graph::torus(4, 5);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g1", service_of(&g1, 3));
    registry.insert("g2", service_of(&g2, 2));
    let (handle, join) = spawn(registry);

    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let (g1, g2) = (&g1, &g2);
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..25usize {
                    let (graph, g, f) = if (worker + i) % 2 == 0 {
                        ("g1", g1, 3)
                    } else {
                        ("g2", g2, 2)
                    };
                    let fset = generators::random_fault_set(g, f, (worker * 100 + i) as u64);
                    let endpoints: Vec<(usize, usize)> = {
                        let all: Vec<(usize, usize)> =
                            g.edge_iter().map(|(_, u, v)| (u, v)).collect();
                        fset.iter().map(|&e| all[e]).collect()
                    };
                    let pairs: Vec<(usize, usize)> = (0..6)
                        .map(|p| ((i * 7 + p) % g.n(), (p * 13 + worker) % g.n()))
                        .collect();
                    let answers = client.query(graph, &endpoints, &pairs).unwrap();
                    for (&(s, t), &got) in pairs.iter().zip(&answers) {
                        let want = connectivity::connected_avoiding(g, s, t, &fset);
                        assert_eq!(got, want, "{graph}: ({s},{t}) avoiding {fset:?}");
                    }
                }
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.requests, 100);
    assert_eq!(stats.pairs, 600);
    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Certificates travel the wire: every connected pair carries a merge
/// list, disconnected pairs none, and the text-mode helper answers the
/// `ftc-cli serve` grammar over TCP.
#[test]
fn certificates_and_text_mode_round_trip() {
    let g = Graph::cycle(6);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("cycle", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    let mut client = Client::connect(handle.addr()).unwrap();
    let certified = client
        .query_certified("cycle", &[(0, 1)], &[(0, 3), (2, 2)])
        .unwrap();
    assert_eq!(certified.answers, vec![true, true]);
    assert_eq!(certified.certificates.len(), 2);
    assert!(certified.certificates.iter().all(Option::is_some));
    assert!(!certified.certificates_dropped);

    let certified = client
        .query_certified("cycle", &[(0, 1), (5, 0)], &[(0, 3)])
        .unwrap();
    assert_eq!(certified.answers, vec![false]);
    assert_eq!(certified.certificates, vec![None]);
    assert!(!certified.certificates_dropped);

    assert_eq!(
        client.query_line("cycle", "0 3 0:1").unwrap().as_deref(),
        Some("0 3 connected")
    );
    assert_eq!(
        client
            .query_line("cycle", "0 3 0:1 5:0")
            .unwrap()
            .as_deref(),
        Some("0 3 disconnected")
    );
    assert_eq!(client.query_line("cycle", "# comment").unwrap(), None);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Malformed payloads are answered with typed error frames and the
/// connection survives; only framing violations (oversized prefix,
/// truncation at EOF) end it.
#[test]
fn malformed_frames_get_typed_errors_without_desync() {
    let g = Graph::torus(3, 4);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    // Garbage payload inside a valid length prefix: typed BadFrame
    // answer, stream stays usable.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    let garbage = b"hello";
    raw.write_all(&(garbage.len() as u32).to_le_bytes())
        .unwrap();
    raw.write_all(garbage).unwrap();
    let resp = proto::decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::BadFrame,
            ..
        }
    ));

    // A wrong protocol version gets its own code — same connection.
    let mut frame = Vec::new();
    proto::encode_request(&mut frame, 5, "g", 0, &[], &[(0, 1)]).unwrap();
    let mut bad_version = frame.clone();
    bad_version[4 + 4] = 99; // version lo byte, after the length prefix
    raw.write_all(&bad_version).unwrap();
    let resp = proto::decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));

    // The same connection still answers a well-formed request.
    raw.write_all(&frame).unwrap();
    let resp = proto::decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(resp.request_id, 5);
    assert!(matches!(resp.body, ResponseBody::Answers { .. }));

    // An oversized length prefix is a framing violation: best-effort
    // error frame, then the connection closes.
    raw.write_all(&(MAX_FRAME_BYTES + 1).to_le_bytes()).unwrap();
    if let Some(payload) = read_frame(&mut raw) {
        let resp = proto::decode_response(&payload).unwrap();
        assert!(matches!(
            resp.body,
            ResponseBody::Error {
                code: ErrorCode::BadFrame,
                ..
            }
        ));
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap(); // EOF, not a hang
    assert!(rest.is_empty());

    // A frame truncated by EOF is a violation too: the server answers
    // best-effort and closes rather than waiting forever.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    raw.write_all(&100u32.to_le_bytes()).unwrap();
    raw.write_all(&[0u8; 10]).unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Every typed error code the server can emit for well-formed frames.
#[test]
fn typed_error_codes_for_bad_arguments() {
    let g = Graph::torus(3, 4);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);
    let mut client = Client::connect(handle.addr()).unwrap();

    let unknown_graph = client.query("nope", &[], &[(0, 1)]).unwrap_err();
    assert!(matches!(
        unknown_graph,
        ClientError::Remote {
            code: ErrorCode::UnknownGraph,
            ..
        }
    ));

    // (0, 0) is never an edge; the fault cannot resolve.
    let unknown_fault = client.query("g", &[(0, 0)], &[(0, 1)]).unwrap_err();
    assert!(matches!(
        unknown_fault,
        ClientError::Remote {
            code: ErrorCode::UnknownFault,
            ..
        }
    ));

    let out_of_range = client.query("g", &[], &[(0, 10_000)]).unwrap_err();
    assert!(matches!(
        out_of_range,
        ClientError::Remote {
            code: ErrorCode::VertexOutOfRange,
            ..
        }
    ));

    // Over the fault budget (f = 2) with a non-trivial pair: rejected.
    let all: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let over_budget = client.query("g", &all[..3], &[(0, 5)]).unwrap_err();
    assert!(matches!(
        over_budget,
        ClientError::Remote {
            code: ErrorCode::QueryRejected,
            ..
        }
    ));

    // The connection survived all four errors.
    assert_eq!(client.query("g", &[], &[(0, 5)]).unwrap(), vec![true]);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// `ServiceRegistry::evict` during live traffic: requests already routed
/// keep answering correctly, later ones get the typed UnknownGraph
/// error, nothing hangs, and re-inserting restores service.
#[test]
fn evict_during_live_traffic_keeps_inflight_answers() {
    let g = generators::random_connected(30, 45, 2);
    let registry = Arc::new(ServiceRegistry::new());
    let service = service_of(&g, 2);
    registry.insert("g", service.clone());
    let (handle, join) = spawn(registry.clone());

    let all: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let (g, all) = (&g, &all);
            let addr = handle.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..100_000usize {
                    let fset = generators::random_fault_set(g, 2, (worker * 7 + i) as u64);
                    let endpoints: Vec<(usize, usize)> = fset.iter().map(|&e| all[e]).collect();
                    let pairs = [(i % g.n(), (i * 3 + worker) % g.n())];
                    match client.query("g", &endpoints, &pairs) {
                        Ok(answers) => {
                            // Answered before the eviction took effect:
                            // must still be *correct*, not just present.
                            let want =
                                connectivity::connected_avoiding(g, pairs[0].0, pairs[0].1, &fset);
                            assert_eq!(answers, vec![want]);
                        }
                        Err(ClientError::Remote {
                            code: ErrorCode::UnknownGraph,
                            ..
                        }) => return, // eviction observed; clean exit
                        Err(e) => panic!("unexpected failure under eviction: {e}"),
                    }
                }
                panic!("eviction never observed");
            });
        }
        std::thread::sleep(Duration::from_millis(30));
        let evicted = registry.evict("g").expect("was registered");
        // The evicted handle itself still answers (registry semantics).
        assert_eq!(evicted.n(), g.n());
    });

    // Re-insert: the same server (no restart) serves the graph again.
    registry.insert("g", service);
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.query("g", &[], &[(0, 7)]).unwrap(), vec![true]);

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Pins the oversized-certificates fallback end to end: a server that
/// rejects certified requests with the `MSG_RETRY_WITHOUT_CERTIFICATES`
/// sentinel sees the client transparently retry the same query without
/// certificates and surface `certificates_dropped` — the answers stay
/// authoritative. A mock server stands in for a response that would
/// exceed the frame cap.
#[test]
fn certified_query_falls_back_when_server_asks_for_a_plain_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mock = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut certified_rejections = 0u32;
        let mut plain_answers = 0u32;
        while let Some(payload) = read_frame(&mut stream) {
            let req = proto::RequestView::parse(&payload).expect("well-formed client frame");
            let mut out = Vec::new();
            if req.want_certificates() {
                certified_rejections += 1;
                proto::encode_response_err(
                    &mut out,
                    req.request_id(),
                    ErrorCode::QueryRejected,
                    proto::MSG_RETRY_WITHOUT_CERTIFICATES,
                );
            } else {
                plain_answers += 1;
                let answers = vec![true; req.pair_count()];
                proto::encode_response_ok(&mut out, req.request_id(), &answers, None).unwrap();
            }
            stream.write_all(&out).unwrap();
        }
        (certified_rejections, plain_answers)
    });

    let mut client = Client::connect(addr).unwrap();
    let certified = client
        .query_certified("g", &[(0, 1)], &[(0, 3), (1, 4)])
        .unwrap();
    assert_eq!(certified.answers, vec![true, true]);
    assert!(certified.certificates.iter().all(Option::is_none));
    assert!(
        certified.certificates_dropped,
        "the fallback must be visible to the caller"
    );
    drop(client);

    let (certified_rejections, plain_answers) = mock.join().unwrap();
    assert_eq!(
        (certified_rejections, plain_answers),
        (1, 1),
        "exactly one certified attempt and one plain retry"
    );
}

/// Past `max_connections`, new connections are shed with a typed
/// connection-level Overloaded frame and a close — established
/// connections keep answering, and the stats account for the shed.
#[test]
fn connection_cap_sheds_with_typed_overloaded_frame() {
    let g = Graph::torus(3, 4);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let server = Server::bind(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 1,
            read_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    // The first connection occupies the only slot.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.query("g", &[], &[(0, 7)]).unwrap(), vec![true]);

    // The second is shed: an id-0 Overloaded frame, then EOF.
    let mut raw = TcpStream::connect(handle.addr()).unwrap();
    let resp = proto::decode_response(&read_frame(&mut raw).unwrap()).unwrap();
    assert_eq!(resp.request_id, 0, "connection-level error carries id 0");
    assert!(matches!(
        resp.body,
        ResponseBody::Error {
            code: ErrorCode::Overloaded,
            ..
        }
    ));
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "shed connection closes after the frame");

    // The established connection is unaffected, and once it closes the
    // slot frees up for a newcomer.
    assert_eq!(client.query("g", &[], &[(0, 5)]).unwrap(), vec![true]);
    drop(client);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let mut replacement = loop {
        let mut c = Client::connect(handle.addr()).unwrap();
        match c.query("g", &[], &[(0, 1)]) {
            Ok(answers) => {
                assert_eq!(answers, vec![true]);
                break c;
            }
            // The old slot may not be released yet; a shed here is the
            // overload contract doing its job — retry until the drop
            // is observed.
            Err(e) if std::time::Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("slot never freed after client drop: {e}"),
        }
    };
    assert_eq!(replacement.query("g", &[], &[(0, 2)]).unwrap(), vec![true]);
    drop(replacement);

    let stats = handle.server_stats();
    assert!(stats.accepted >= 2, "two real connections were served");
    assert!(
        stats.shed_connections >= 1,
        "the over-cap connection was shed"
    );

    handle.shutdown();
    join.join().unwrap().unwrap();
}

/// Graceful shutdown under concurrent coalesced traffic: every worker
/// ends with either a completed (correct-length) answer or a clean
/// connection close — never a hang — and the server joins all handlers.
#[test]
fn graceful_shutdown_drains_concurrent_traffic() {
    let g = generators::random_connected(30, 45, 3);
    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", service_of(&g, 2));
    let (handle, join) = spawn(registry);

    let all: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let shared_faults = [all[0], all[7]];
    std::thread::scope(|scope| {
        for worker in 0..6usize {
            let addr = handle.addr();
            let handle = handle.clone();
            let n = g.n();
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut completed = 0u64;
                for i in 0..1_000_000usize {
                    // All workers share one fault set, so in-flight
                    // requests coalesce onto shared sessions.
                    let pairs = [(i % n, (i * 5 + worker) % n)];
                    match client.query("g", &shared_faults, &pairs) {
                        Ok(answers) => {
                            assert_eq!(answers.len(), 1);
                            completed += 1;
                        }
                        Err(ClientError::Io(_)) => break, // drained and closed
                        Err(e) => panic!("unexpected failure during shutdown: {e}"),
                    }
                    if handle.is_shutdown() && completed > 0 {
                        break;
                    }
                }
                assert!(completed > 0, "worker {worker} never completed a request");
            });
        }
        std::thread::sleep(Duration::from_millis(60));
        handle.shutdown();
    });

    join.join().unwrap().unwrap();
    let stats = handle.stats();
    assert!(stats.requests > 0);
    assert!(stats.batches <= stats.requests);
}

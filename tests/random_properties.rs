//! Property-based integration tests: random graphs, random fault sets,
//! scheme-vs-oracle equivalence, and routing-path validity.

use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators, Graph};
use ftc::routing::ForbiddenSetRouter;
use proptest::prelude::*;

/// A seeded random connected graph spec small enough for theory thresholds.
fn graph_spec() -> impl Strategy<Value = (usize, usize, u64)> {
    (6usize..=20, 0usize..=12, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scheme_matches_oracle((n, extra, seed) in graph_spec(), fault_seed in any::<u64>()) {
        let g = generators::random_connected(n, extra.min(n * (n - 1) / 2 - (n - 1)), seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        let session = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        for s in 0..g.n() {
            for t in 0..g.n() {
                let got = session.connected(l.vertex_label(s), l.vertex_label(t)).unwrap();
                prop_assert_eq!(got, connectivity::connected_avoiding(&g, s, t, &fset));
            }
        }
    }

    #[test]
    fn routing_paths_are_valid_and_fault_free(
        (n, extra, seed) in graph_spec(),
        fault_seed in any::<u64>(),
    ) {
        let g = generators::random_connected(n, extra.min(n * (n - 1) / 2 - (n - 1)), seed);
        let router = ForbiddenSetRouter::new(&g, 2).unwrap();
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        for s in 0..g.n() {
            for t in 0..g.n() {
                match router.route(s, t, &fset).unwrap() {
                    None => prop_assert!(!connectivity::connected_avoiding(&g, s, t, &fset)),
                    Some(path) => {
                        prop_assert_eq!(path[0], s);
                        prop_assert_eq!(*path.last().unwrap(), t);
                        for w in path.windows(2) {
                            let e = g.find_edge(w[0], w[1]);
                            prop_assert!(e.is_some(), "non-edge step");
                            // The only way a faulty ID may appear is a
                            // parallel non-faulty twin; simple generators
                            // never produce parallels, so assert strictly.
                            prop_assert!(!fset.contains(&e.unwrap()), "faulty edge used");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn randomized_and_deterministic_schemes_agree(
        (n, extra, seed) in graph_spec(),
        fault_seed in any::<u64>(),
        scheme_seed in any::<u64>(),
    ) {
        let g = generators::random_connected(n, extra.min(n * (n - 1) / 2 - (n - 1)), seed);
        let det = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let rnd = FtcScheme::build(&g, &Params::randomized(2, scheme_seed)).unwrap();
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        let dl = det.labels();
        let rl = rnd.labels();
        let ds = dl.session(fset.iter().map(|&e| dl.edge_label_by_id(e))).unwrap();
        let rs = rl.session(fset.iter().map(|&e| rl.edge_label_by_id(e))).unwrap();
        for s in 0..g.n() {
            for t in (s + 1)..g.n() {
                let a = ds.connected(dl.vertex_label(s), dl.vertex_label(t)).unwrap();
                let b = rs.connected(rl.vertex_label(s), rl.vertex_label(t)).unwrap();
                prop_assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn tree_inputs_reduce_to_fragment_logic(n in 4usize..=24, seed in any::<u64>(), fs in any::<u64>()) {
        // Trees have no non-tree edges: the whole answer comes from the
        // ancestry/fragment machinery with empty outdetect vectors.
        let g = generators::random_tree(n, seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fs);
        let session = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        for s in 0..g.n() {
            for t in 0..g.n() {
                let got = session.connected(l.vertex_label(s), l.vertex_label(t)).unwrap();
                prop_assert_eq!(got, connectivity::connected_avoiding(&g, s, t, &fset));
            }
        }
    }
}

#[test]
fn dense_graph_regression() {
    // K7 with every pair of faults — a dense stress of the hierarchy.
    let g = Graph::complete(7);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    for a in 0..g.m() {
        for b in (a + 1)..g.m() {
            let session = l
                .session([l.edge_label_by_id(a), l.edge_label_by_id(b)])
                .unwrap();
            for s in 0..7 {
                for t in 0..7 {
                    let got = session
                        .connected(l.vertex_label(s), l.vertex_label(t))
                        .unwrap();
                    // K7 minus 2 edges is always connected.
                    assert!(
                        got,
                        "K7 cannot be disconnected by 2 faults ({s},{t},[{a},{b}])"
                    );
                }
            }
        }
    }
}

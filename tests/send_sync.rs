//! Compile-time auto-trait assertions for every type the serving layer
//! shares across threads.
//!
//! `ConnectivityService` promises `Send + Sync + Clone`; that promise is
//! only as good as the types it is built from. Each assertion here is a
//! monomorphization the compiler must prove, so slipping an `Rc`, a
//! `Cell`, or an unguarded raw pointer into any of these types turns
//! into a compile error in this test — not a data race in production.

use ftc::codes::{DecodeScratch, ThresholdCodec};
use ftc::core::fragments::Fragments;
use ftc::core::serial::{CompactEdgeLabelView, EdgeLabelView, VertexLabelView};
use ftc::core::store::{ArchivedEdgeView, EdgeEncoding, LabelStore, LabelStoreView, StoreError};
use ftc::core::{
    EdgeLabel, LabelHeader, LabelSet, QueryError, QuerySession, RsDetector, RsVector,
    SessionScratch, VertexLabel,
};
use ftc::routing::ForbiddenSetRouter;
use ftc::serve::{Answers, ConnectivityService, RegistryError, ServeError, ServiceRegistry};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}
fn assert_clone<T: Clone>() {}

#[test]
fn serving_layer_types_are_send_sync() {
    // The service surface itself.
    assert_send_sync::<ConnectivityService>();
    assert_send_sync::<ServiceRegistry>();
    assert_send_sync::<Answers>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<RegistryError>();
    assert_clone::<ConnectivityService>();
    assert_clone::<Answers>();

    // The storage layer the service shares: archives, shared views, and
    // every zero-copy view type resolved out of them.
    assert_send_sync::<LabelStore>();
    assert_send_sync::<LabelStoreView<'static>>();
    assert_send_sync::<ArchivedEdgeView<'static>>();
    assert_send_sync::<VertexLabelView<'static>>();
    assert_send_sync::<EdgeLabelView<'static>>();
    assert_send_sync::<CompactEdgeLabelView<'static>>();
    assert_send_sync::<EdgeEncoding>();
    assert_send_sync::<StoreError>();
    assert_clone::<LabelStoreView<'static>>();

    // Owned labels and the session machinery behind a query.
    assert_send_sync::<LabelSet<RsVector>>();
    assert_send_sync::<VertexLabel>();
    assert_send_sync::<EdgeLabel<RsVector>>();
    assert_send_sync::<LabelHeader>();
    assert_send_sync::<QuerySession>();
    assert_send_sync::<Fragments>();
    assert_send_sync::<QueryError>();

    // Codec / detector state: checked out per thread, so Send suffices,
    // but nothing in them prevents Sync either.
    assert_send_sync::<SessionScratch<RsVector>>();
    assert_send_sync::<RsVector>();
    assert_send_sync::<RsDetector>();
    assert_send_sync::<ThresholdCodec>();
    assert_send_sync::<DecodeScratch>();
    assert_send::<Box<SessionScratch<RsVector>>>();

    // Higher layers built on the service.
    assert_send_sync::<ForbiddenSetRouter>();
}

//! Decoder-universality test: the decoder is a pure function of label
//! *bytes*. We build a labeling, serialize every label, destroy the scheme
//! and the graph, then answer queries from the stored bytes alone — both
//! through owned deserialization and through the zero-copy label views —
//! and still match the oracle.

use ftc::core::serial::{
    edge_from_bytes, edge_to_bytes, vertex_from_bytes, vertex_to_bytes, EdgeLabelView,
    VertexLabelView,
};
use ftc::core::{FtcScheme, Params, QuerySession, VertexLabelRead};
use ftc::graph::{connectivity, generators, Graph};

#[test]
fn queries_from_bytes_alone() {
    let g = Graph::torus(3, 4);
    let oracle: Vec<(usize, usize, Vec<usize>, bool)> = {
        let mut cases = Vec::new();
        for i in 0..30u64 {
            let fset = generators::random_fault_set(&g, 2, i);
            for s in [0usize, 3, 7] {
                for t in [1usize, 5, 11] {
                    cases.push((
                        s,
                        t,
                        fset.clone(),
                        connectivity::connected_avoiding(&g, s, t, &fset),
                    ));
                }
            }
        }
        cases
    };

    // Serialize all labels, then drop everything else.
    let (vertex_bytes, edge_bytes) = {
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let vb: Vec<Vec<u8>> = (0..g.n())
            .map(|v| vertex_to_bytes(l.vertex_label(v)))
            .collect();
        let eb: Vec<Vec<u8>> = (0..g.m())
            .map(|e| edge_to_bytes(l.edge_label_by_id(e)))
            .collect();
        (vb, eb)
    };
    // `scheme` is gone. Decode every query from bytes, twice: through
    // owned deserialization and through zero-copy views. Both must agree
    // with the oracle bit-for-bit.
    for (s, t, fset, want) in oracle {
        // Owned path.
        let vs = vertex_from_bytes(&vertex_bytes[s]).unwrap();
        let vt = vertex_from_bytes(&vertex_bytes[t]).unwrap();
        let faults: Vec<_> = fset
            .iter()
            .map(|&e| edge_from_bytes(&edge_bytes[e]).unwrap())
            .collect();
        let owned = QuerySession::new(vs.header, &faults).unwrap();
        let got = owned.connected(vs, vt).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from owned bytes");

        // Zero-copy path: no owned labels are ever materialized.
        let views: Vec<EdgeLabelView> = fset
            .iter()
            .map(|&e| EdgeLabelView::new(&edge_bytes[e]).unwrap())
            .collect();
        let svw = VertexLabelView::new(&vertex_bytes[s]).unwrap();
        let tvw = VertexLabelView::new(&vertex_bytes[t]).unwrap();
        let zero_copy = QuerySession::new(svw.header(), views).unwrap();
        let got = zero_copy.connected(svw, tvw).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from byte views");
    }
}

#[test]
fn serialized_sizes_match_reported_bits() {
    let g = generators::random_connected(24, 30, 4);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let size = scheme.size_report();
    let l = scheme.labels();
    // Byte encodings carry a 2-byte magic; otherwise they should match the
    // reported bit widths exactly.
    let vb = vertex_to_bytes(l.vertex_label(0));
    assert_eq!((vb.len() - 2) * 8, size.vertex_bits);
    let eb = edge_to_bytes(l.edge_label_by_id(0));
    // Edge encoding adds magic (2) + k (4) + len (4) bytes of framing.
    assert_eq!((eb.len() - 2 - 8) * 8, size.edge_bits);
}

#[test]
fn tampered_bytes_do_not_panic() {
    let g = Graph::cycle(5);
    let scheme = FtcScheme::build(&g, &Params::deterministic(1)).unwrap();
    let l = scheme.labels();
    let mut eb = edge_to_bytes(l.edge_label_by_id(0));
    // Flip a payload byte: either parses to a harmless different label or
    // fails to parse — never panics.
    let idx = eb.len() - 3;
    eb[idx] ^= 0xff;
    let _ = edge_from_bytes(&eb);
    // Truncations at every prefix length must error, not panic — for the
    // owned parsers and the zero-copy views alike.
    for cut in 0..eb.len() {
        let _ = edge_from_bytes(&eb[..cut]);
        let _ = vertex_from_bytes(&eb[..cut]);
        let _ = EdgeLabelView::new(&eb[..cut]);
        let _ = VertexLabelView::new(&eb[..cut]);
    }
}

//! Decoder-universality test: the decoder is a pure function of label
//! *bytes*. We build a labeling, serialize every label, destroy the scheme
//! and the graph, then answer queries from the stored bytes alone — both
//! through owned deserialization and through the zero-copy label views —
//! and still match the oracle. Property tests cover the compact
//! (half-width) edge encoding round trip and truncation/corruption
//! rejection of both the per-label layouts and the archive format.

use ftc::core::serial::{
    compact_edge_from_bytes, edge_from_bytes, edge_to_bytes, edge_to_bytes_compact,
    vertex_from_bytes, vertex_to_bytes, CompactEdgeLabelView, EdgeLabelView, VertexLabelView,
};
use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, QuerySession, VertexLabelRead};
use ftc::graph::{connectivity, generators, Graph};
use proptest::prelude::*;

#[test]
fn queries_from_bytes_alone() {
    let g = Graph::torus(3, 4);
    let oracle: Vec<(usize, usize, Vec<usize>, bool)> = {
        let mut cases = Vec::new();
        for i in 0..30u64 {
            let fset = generators::random_fault_set(&g, 2, i);
            for s in [0usize, 3, 7] {
                for t in [1usize, 5, 11] {
                    cases.push((
                        s,
                        t,
                        fset.clone(),
                        connectivity::connected_avoiding(&g, s, t, &fset),
                    ));
                }
            }
        }
        cases
    };

    // Serialize all labels, then drop everything else.
    let (vertex_bytes, edge_bytes) = {
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let vb: Vec<Vec<u8>> = (0..g.n())
            .map(|v| vertex_to_bytes(l.vertex_label(v)))
            .collect();
        let eb: Vec<Vec<u8>> = (0..g.m())
            .map(|e| edge_to_bytes(l.edge_label_by_id(e)))
            .collect();
        (vb, eb)
    };
    // `scheme` is gone. Decode every query from bytes, twice: through
    // owned deserialization and through zero-copy views. Both must agree
    // with the oracle bit-for-bit.
    for (s, t, fset, want) in oracle {
        // Owned path.
        let vs = vertex_from_bytes(&vertex_bytes[s]).unwrap();
        let vt = vertex_from_bytes(&vertex_bytes[t]).unwrap();
        let faults: Vec<_> = fset
            .iter()
            .map(|&e| edge_from_bytes(&edge_bytes[e]).unwrap())
            .collect();
        let owned = QuerySession::new(vs.header, &faults).unwrap();
        let got = owned.connected(vs, vt).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from owned bytes");

        // Zero-copy path: no owned labels are ever materialized.
        let views: Vec<EdgeLabelView> = fset
            .iter()
            .map(|&e| EdgeLabelView::new(&edge_bytes[e]).unwrap())
            .collect();
        let svw = VertexLabelView::new(&vertex_bytes[s]).unwrap();
        let tvw = VertexLabelView::new(&vertex_bytes[t]).unwrap();
        let zero_copy = QuerySession::new(svw.header(), views).unwrap();
        let got = zero_copy.connected(svw, tvw).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from byte views");
    }
}

#[test]
fn serialized_sizes_match_reported_bits() {
    let g = generators::random_connected(24, 30, 4);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let size = scheme.size_report();
    let l = scheme.labels();
    // Byte encodings carry a 2-byte magic; otherwise they should match the
    // reported bit widths exactly.
    let vb = vertex_to_bytes(l.vertex_label(0));
    assert_eq!((vb.len() - 2) * 8, size.vertex_bits);
    let eb = edge_to_bytes(l.edge_label_by_id(0));
    // Edge encoding adds magic (2) + k (4) + len (4) bytes of framing.
    assert_eq!((eb.len() - 2 - 8) * 8, size.edge_bits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The compact edge encoding is a lossless round trip of the full
    /// one on every edge of random labelings, through both the owned
    /// parser and the zero-copy view — and every truncation of it is
    /// rejected with a located error, never a panic.
    #[test]
    fn compact_encoding_round_trips_and_rejects_truncation(
        n in 5usize..=14,
        extra in 0usize..=8,
        seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        for e in 0..g.m() {
            let label = l.edge_label_by_id(e);
            let compact = edge_to_bytes_compact(label);
            let full = edge_to_bytes(label);
            prop_assert!(compact.len() <= full.len());
            // Owned parser and zero-copy view agree with the original.
            prop_assert_eq!(&compact_edge_from_bytes(&compact).unwrap(), label);
            let view = CompactEdgeLabelView::new(&compact).unwrap();
            prop_assert_eq!(&view.to_label(), label);
            // The compact encoding must agree with the full one after
            // expansion, bit for bit.
            prop_assert_eq!(
                &compact_edge_from_bytes(&compact).unwrap(),
                &edge_from_bytes(&full).unwrap()
            );
            // Every strict prefix is rejected; the reported offset never
            // exceeds the input length.
            for cut in 0..compact.len() {
                let owned_err = compact_edge_from_bytes(&compact[..cut]).unwrap_err();
                prop_assert!(owned_err.offset <= cut);
                prop_assert!(CompactEdgeLabelView::new(&compact[..cut]).is_err());
            }
            // Trailing garbage is rejected too.
            let mut ext = compact.clone();
            ext.push(0);
            prop_assert!(compact_edge_from_bytes(&ext).is_err());
            prop_assert!(CompactEdgeLabelView::new(&ext).is_err());
        }
    }

    /// Archive blobs reject every truncation, and single-byte corruption
    /// never panics the validator (it either surfaces a located error or
    /// leaves a still-well-formed archive, e.g. when the flip lands in a
    /// syndrome word).
    #[test]
    fn archive_rejects_truncation_and_survives_corruption(
        seed in any::<u64>(),
        corrupt_at in any::<usize>(),
        flip in 1u8..,
        compact in any::<bool>(),
    ) {
        let g = generators::random_connected(10, 6, seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let encoding = if compact { EdgeEncoding::Compact } else { EdgeEncoding::Full };
        let blob = LabelStore::to_vec(scheme.labels(), encoding);
        for cut in (0..blob.len()).step_by(7).chain([blob.len() - 1]) {
            let err = LabelStoreView::open(&blob[..cut]).unwrap_err();
            prop_assert!(err.offset <= blob.len());
        }
        let mut corrupted = blob.clone();
        let at = corrupt_at % corrupted.len();
        corrupted[at] ^= flip;
        let _ = LabelStoreView::open(&corrupted); // must not panic
    }
}

#[test]
fn tampered_bytes_do_not_panic() {
    let g = Graph::cycle(5);
    let scheme = FtcScheme::build(&g, &Params::deterministic(1)).unwrap();
    let l = scheme.labels();
    let mut eb = edge_to_bytes(l.edge_label_by_id(0));
    // Flip a payload byte: either parses to a harmless different label or
    // fails to parse — never panics.
    let idx = eb.len() - 3;
    eb[idx] ^= 0xff;
    let _ = edge_from_bytes(&eb);
    // Truncations at every prefix length must error, not panic — for the
    // owned parsers and the zero-copy views alike.
    for cut in 0..eb.len() {
        let _ = edge_from_bytes(&eb[..cut]);
        let _ = vertex_from_bytes(&eb[..cut]);
        let _ = EdgeLabelView::new(&eb[..cut]);
        let _ = VertexLabelView::new(&eb[..cut]);
    }
}

//! Decoder-universality test: the decoder is a pure function of label
//! *bytes*. We build a labeling, serialize every label, destroy the scheme
//! and the graph, then answer queries from the stored bytes alone — both
//! through owned deserialization and through the zero-copy label views —
//! and still match the oracle. Property tests cover the compact
//! (half-width) edge encoding round trip and truncation/corruption
//! rejection of both the per-label layouts and the archive format.

use ftc::core::serial::{
    compact_edge_from_bytes, edge_from_bytes, edge_to_bytes, edge_to_bytes_compact,
    vertex_from_bytes, vertex_to_bytes, CompactEdgeLabelView, EdgeLabelView, VertexLabelView,
};
use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, QuerySession, VertexLabelRead};
use ftc::graph::{connectivity, generators, Graph};
use ftc::net::proto as netproto;
use proptest::prelude::*;

#[test]
fn queries_from_bytes_alone() {
    let g = Graph::torus(3, 4);
    let oracle: Vec<(usize, usize, Vec<usize>, bool)> = {
        let mut cases = Vec::new();
        for i in 0..30u64 {
            let fset = generators::random_fault_set(&g, 2, i);
            for s in [0usize, 3, 7] {
                for t in [1usize, 5, 11] {
                    cases.push((
                        s,
                        t,
                        fset.clone(),
                        connectivity::connected_avoiding(&g, s, t, &fset),
                    ));
                }
            }
        }
        cases
    };

    // Serialize all labels, then drop everything else.
    let (vertex_bytes, edge_bytes) = {
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let vb: Vec<Vec<u8>> = (0..g.n())
            .map(|v| vertex_to_bytes(l.vertex_label(v)))
            .collect();
        let eb: Vec<Vec<u8>> = (0..g.m())
            .map(|e| edge_to_bytes(l.edge_label_by_id(e)))
            .collect();
        (vb, eb)
    };
    // `scheme` is gone. Decode every query from bytes, twice: through
    // owned deserialization and through zero-copy views. Both must agree
    // with the oracle bit-for-bit.
    for (s, t, fset, want) in oracle {
        // Owned path.
        let vs = vertex_from_bytes(&vertex_bytes[s]).unwrap();
        let vt = vertex_from_bytes(&vertex_bytes[t]).unwrap();
        let faults: Vec<_> = fset
            .iter()
            .map(|&e| edge_from_bytes(&edge_bytes[e]).unwrap())
            .collect();
        let owned = QuerySession::new(vs.header, &faults).unwrap();
        let got = owned.connected(vs, vt).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from owned bytes");

        // Zero-copy path: no owned labels are ever materialized.
        let views: Vec<EdgeLabelView> = fset
            .iter()
            .map(|&e| EdgeLabelView::new(&edge_bytes[e]).unwrap())
            .collect();
        let svw = VertexLabelView::new(&vertex_bytes[s]).unwrap();
        let tvw = VertexLabelView::new(&vertex_bytes[t]).unwrap();
        let zero_copy = QuerySession::new(svw.header(), views).unwrap();
        let got = zero_copy.connected(svw, tvw).unwrap();
        assert_eq!(got, want, "query ({s},{t},{fset:?}) from byte views");
    }
}

#[test]
fn serialized_sizes_match_reported_bits() {
    let g = generators::random_connected(24, 30, 4);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let size = scheme.size_report();
    let l = scheme.labels();
    // Byte encodings carry a 2-byte magic; otherwise they should match the
    // reported bit widths exactly.
    let vb = vertex_to_bytes(l.vertex_label(0));
    assert_eq!((vb.len() - 2) * 8, size.vertex_bits);
    let eb = edge_to_bytes(l.edge_label_by_id(0));
    // Edge encoding adds magic (2) + k (4) + len (4) bytes of framing.
    assert_eq!((eb.len() - 2 - 8) * 8, size.edge_bits);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The compact edge encoding is a lossless round trip of the full
    /// one on every edge of random labelings, through both the owned
    /// parser and the zero-copy view — and every truncation of it is
    /// rejected with a located error, never a panic.
    #[test]
    fn compact_encoding_round_trips_and_rejects_truncation(
        n in 5usize..=14,
        extra in 0usize..=8,
        seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        for e in 0..g.m() {
            let label = l.edge_label_by_id(e);
            let compact = edge_to_bytes_compact(label);
            let full = edge_to_bytes(label);
            prop_assert!(compact.len() <= full.len());
            // Owned parser and zero-copy view agree with the original.
            prop_assert_eq!(&compact_edge_from_bytes(&compact).unwrap(), label);
            let view = CompactEdgeLabelView::new(&compact).unwrap();
            prop_assert_eq!(&view.to_label(), label);
            // The compact encoding must agree with the full one after
            // expansion, bit for bit.
            prop_assert_eq!(
                &compact_edge_from_bytes(&compact).unwrap(),
                &edge_from_bytes(&full).unwrap()
            );
            // Every strict prefix is rejected; the reported offset never
            // exceeds the input length.
            for cut in 0..compact.len() {
                let owned_err = compact_edge_from_bytes(&compact[..cut]).unwrap_err();
                prop_assert!(owned_err.offset <= cut);
                prop_assert!(CompactEdgeLabelView::new(&compact[..cut]).is_err());
            }
            // Trailing garbage is rejected too.
            let mut ext = compact.clone();
            ext.push(0);
            prop_assert!(compact_edge_from_bytes(&ext).is_err());
            prop_assert!(CompactEdgeLabelView::new(&ext).is_err());
        }
    }

    /// Archive blobs reject every truncation, and single-byte corruption
    /// never panics the validator (it either surfaces a located error or
    /// leaves a still-well-formed archive, e.g. when the flip lands in a
    /// syndrome word).
    #[test]
    fn archive_rejects_truncation_and_survives_corruption(
        seed in any::<u64>(),
        corrupt_at in any::<usize>(),
        flip in 1u8..,
        compact in any::<bool>(),
    ) {
        let g = generators::random_connected(10, 6, seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let encoding = if compact { EdgeEncoding::Compact } else { EdgeEncoding::Full };
        let blob = LabelStore::to_vec(scheme.labels(), encoding);
        for cut in (0..blob.len()).step_by(7).chain([blob.len() - 1]) {
            let err = LabelStoreView::open(&blob[..cut]).unwrap_err();
            prop_assert!(err.offset <= blob.len());
        }
        let mut corrupted = blob.clone();
        let at = corrupt_at % corrupted.len();
        corrupted[at] ^= flip;
        let _ = LabelStoreView::open(&corrupted); // must not panic
    }
}

// The v2 compressed container is held to the same standard as the v1
// blob: transcoding is the identity, the rANS entropy stage is a lossless
// round trip over arbitrary byte distributions, and damaged archives
// fail with located errors at open or first section touch — never a
// panic, never an out-of-bounds offset.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// rANS encode∘decode is the identity for any input, from uniform
    /// random bytes to heavily skewed alphabets; corrupt streams never
    /// panic and report in-bounds offsets.
    #[test]
    fn rans_round_trips_arbitrary_distributions(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        alphabet_bits in 1u32..=8,
        flip_at in any::<usize>(),
        flip in 1u8..,
    ) {
        // Masking skews the distribution: 1 bit ≈ binary stream, 8 bits
        // ≈ uniform bytes.
        let mask = (1u16 << alphabet_bits) - 1;
        let data: Vec<u8> = data.iter().map(|&b| b & mask as u8).collect();
        let coded = ftc::compress::rans::encode(&data);
        prop_assert_eq!(
            ftc::compress::rans::decode(&coded, data.len()).unwrap(),
            data.clone()
        );
        // Wrong claimed lengths and damaged streams are rejected or
        // decode to the claimed length — never a panic.
        if let Err(e) = ftc::compress::rans::decode(&coded, data.len() + 1) {
            prop_assert!(e.offset <= coded.len());
        }
        for cut in (0..coded.len()).step_by(11) {
            if let Err(e) = ftc::compress::rans::decode(&coded[..cut], data.len()) {
                prop_assert!(e.offset <= cut);
            }
        }
        if !coded.is_empty() {
            let mut bad = coded.clone();
            let at = flip_at % bad.len();
            bad[at] ^= flip;
            match ftc::compress::rans::decode(&bad, data.len()) {
                Ok(out) => prop_assert_eq!(out.len(), data.len()),
                Err(e) => prop_assert!(e.offset <= bad.len()),
            }
        }
    }

    /// v1 → v2 → v1 transcoding is byte-identical on random labelings in
    /// both encodings, and every truncation or bit flip of the v2 bytes
    /// fails at open or at first section touch with an in-bounds offset.
    #[test]
    fn v2_transcode_is_identity_and_damage_is_detected(
        seed in any::<u64>(),
        compact in any::<bool>(),
        corrupt_at in any::<usize>(),
        flip in 1u8..,
    ) {
        use ftc::core::compressed::{compress_archive, CompressedStoreView};

        let g = generators::random_connected(10, 6, seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let encoding = if compact { EdgeEncoding::Compact } else { EdgeEncoding::Full };
        let blob = LabelStore::to_vec(scheme.labels(), encoding);
        let v1 = LabelStoreView::open(&blob).unwrap();
        let store = compress_archive(&v1);
        let v2_bytes = store.as_bytes().to_vec();

        // Transcode identity.
        let view = CompressedStoreView::open(v2_bytes.clone()).unwrap();
        prop_assert_eq!(view.to_v1_vec().unwrap(), blob);

        // Every truncation fails at open (the section table pins the
        // total length) with an offset inside the original buffer.
        for cut in (0..v2_bytes.len()).step_by(13).chain([v2_bytes.len() - 1]) {
            let err = CompressedStoreView::open(v2_bytes[..cut].to_vec()).unwrap_err();
            prop_assert!(err.offset <= v2_bytes.len());
        }

        // A bit flip is caught at open (prologue/table damage) or at
        // first touch of the damaged section (lazy checksum) — never a
        // panic, and full reconstruction surfaces it too.
        let mut bad = v2_bytes.clone();
        let at = corrupt_at % bad.len();
        bad[at] ^= flip;
        match CompressedStoreView::open(bad.clone()) {
            Err(e) => prop_assert!(e.offset <= bad.len()),
            Ok(view) => {
                let err = view.to_v1_vec().expect_err("flip must be detected");
                prop_assert!(err.offset <= bad.len());
            }
        }
    }
}

// The write-ahead journal is held to the same standard as the label and
// archive parsers: encode∘scan is the identity, any truncation is a
// clean prefix with at most a torn tail (that is exactly what a
// mid-append power cut produces), and arbitrary single-byte damage is
// either tolerated as a torn tail or surfaces as a typed error with an
// in-bounds offset — never a panic, never a silently wrong replay.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn journal_scan_round_trips_and_rejects_damage(
        raw_ops in proptest::collection::vec((0u8..3, any::<u32>(), any::<u32>()), 1..24),
        base_seq in any::<u64>(),
        lineage in any::<u64>(),
        flip_at in any::<usize>(),
        flip in 1u8..,
    ) {
        use ftc::core::io::SimVfs;
        use ftc::dyn_::journal::{
            scan_journal, FsyncPolicy, Journal, JournalErrorKind, JournalMeta, JournalOp,
            JOURNAL_HEADER_LEN,
        };
        use ftc::core::io::Vfs as _;
        use std::path::PathBuf;

        let ops: Vec<JournalOp> = raw_ops
            .iter()
            .map(|&(kind, u, v)| match kind {
                0 => JournalOp::Insert(u, v),
                1 => JournalOp::Delete(u, v),
                _ => JournalOp::Rebuild,
            })
            .collect();
        let meta = JournalMeta {
            n: 1000,
            f: 2,
            k: 24,
            encoding: EdgeEncoding::Compact,
            base_seq,
            lineage,
        };
        let vfs = SimVfs::new();
        let path = PathBuf::from("j.ftcj");
        let mut j = Journal::create(&vfs, &path, meta, FsyncPolicy::OnCommit).unwrap();
        for (i, &op) in ops.iter().enumerate() {
            prop_assert_eq!(j.append(op).unwrap(), base_seq.wrapping_add(1 + i as u64));
        }
        j.sync().unwrap();
        let bytes = vfs.read(&path).unwrap();

        // Identity: the scan returns exactly what was appended.
        let scan = scan_journal(&bytes).unwrap();
        prop_assert_eq!(&scan.meta, &meta);
        prop_assert_eq!(scan.torn_at, None);
        let got: Vec<JournalOp> = scan.records.iter().map(|r| r.op).collect();
        prop_assert_eq!(&got, &ops);
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.seq, base_seq.wrapping_add(1 + i as u64));
        }

        // Every truncation: header cuts are typed errors, record cuts
        // are clean prefixes with at most a torn tail — records never
        // reorder, offsets never leave the buffer.
        for cut in 0..bytes.len() {
            match scan_journal(&bytes[..cut]) {
                Ok(s) => {
                    prop_assert!(cut >= JOURNAL_HEADER_LEN);
                    prop_assert!(s.records.len() <= ops.len());
                    for (r, &op) in s.records.iter().zip(&ops) {
                        prop_assert_eq!(r.op, op);
                    }
                    if s.records.len() < ops.len() && s.torn_at.is_none() {
                        // No torn tail: the cut must sit exactly on the
                        // next record's frame boundary.
                        prop_assert_eq!(
                            cut,
                            scan.records[s.records.len()].offset,
                            "cut {} lost records silently",
                            cut
                        );
                    }
                    if let Some(at) = s.torn_at {
                        prop_assert!(at <= cut);
                    }
                }
                Err(e) => {
                    prop_assert!(cut < JOURNAL_HEADER_LEN, "cut {cut} must be tolerated");
                    prop_assert_eq!(e.kind, JournalErrorKind::TruncatedHeader);
                    prop_assert!(e.offset <= cut);
                }
            }
        }

        // A single flipped byte: never a panic, never an out-of-bounds
        // offset, and on a tolerated scan never an invented record.
        let mut bad = bytes.clone();
        let at = flip_at % bad.len();
        bad[at] ^= flip;
        match scan_journal(&bad) {
            Ok(s) => prop_assert!(s.records.len() <= ops.len()),
            Err(e) => prop_assert!(e.offset <= bad.len()),
        }
    }
}

#[test]
fn tampered_bytes_do_not_panic() {
    let g = Graph::cycle(5);
    let scheme = FtcScheme::build(&g, &Params::deterministic(1)).unwrap();
    let l = scheme.labels();
    let mut eb = edge_to_bytes(l.edge_label_by_id(0));
    // Flip a payload byte: either parses to a harmless different label or
    // fails to parse — never panics.
    let idx = eb.len() - 3;
    eb[idx] ^= 0xff;
    let _ = edge_from_bytes(&eb);
    // Truncations at every prefix length must error, not panic — for the
    // owned parsers and the zero-copy views alike.
    for cut in 0..eb.len() {
        let _ = edge_from_bytes(&eb[..cut]);
        let _ = vertex_from_bytes(&eb[..cut]);
        let _ = EdgeLabelView::new(&eb[..cut]);
        let _ = VertexLabelView::new(&eb[..cut]);
    }
}

// The network frame parsers are held to the same standard as the label
// parsers above: arbitrary bytes never panic, encode∘decode is the
// identity, and every strict prefix of a valid frame is rejected with an
// error offset inside the buffer.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn net_frame_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        if let Err(e) = netproto::RequestView::parse(&bytes) {
            prop_assert!(e.offset <= bytes.len());
        }
        if let Err(e) = netproto::decode_response(&bytes) {
            prop_assert!(e.offset <= bytes.len());
        }
    }

    #[test]
    fn net_request_round_trips_and_rejects_prefixes(
        request_id in any::<u64>(),
        gidx in 0usize..4,
        want_certs in any::<bool>(),
        faults in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..8),
        flip_at in any::<usize>(),
        flip in any::<u8>(),
    ) {
        let graph = ["g", "torus-3x4", "a-rather-long-graph-identifier", ""][gidx];
        let faults: Vec<(usize, usize)> =
            faults.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
        let pairs: Vec<(usize, usize)> =
            pairs.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
        let flags = if want_certs { netproto::FLAG_CERTIFICATES } else { 0 };

        let mut frame = Vec::new();
        netproto::encode_request(&mut frame, request_id, graph, flags, &faults, &pairs).unwrap();
        let payload = &frame[4..]; // strip the length prefix

        let view = netproto::RequestView::parse(payload).unwrap();
        prop_assert_eq!(view.request_id(), request_id);
        prop_assert_eq!(view.graph(), graph);
        prop_assert_eq!(view.want_certificates(), want_certs);
        prop_assert_eq!(view.fault_count(), faults.len());
        prop_assert_eq!(view.pair_count(), pairs.len());
        let got_faults: Vec<(usize, usize)> = view
            .faults()
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        prop_assert_eq!(got_faults, faults);
        let got_pairs: Vec<(usize, usize)> = view
            .pairs()
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        prop_assert_eq!(got_pairs, pairs);

        // Exact-length format: every strict prefix is an error, never a
        // panic, with the reported offset inside the buffer.
        for cut in 0..payload.len() {
            let err = netproto::RequestView::parse(&payload[..cut]).unwrap_err();
            prop_assert!(err.offset <= cut);
        }
        // A single flipped byte may parse to a different (harmless)
        // request or fail — it must not panic.
        let mut mutated = payload.to_vec();
        if !mutated.is_empty() {
            let at = flip_at % mutated.len();
            mutated[at] ^= flip;
            let _ = netproto::RequestView::parse(&mutated);
        }
    }

    #[test]
    fn net_response_round_trips(
        request_id in any::<u64>(),
        answers in proptest::collection::vec(any::<bool>(), 0..16),
        with_certs in any::<bool>(),
        cert_seed in any::<u32>(),
    ) {
        // Connected pairs carry a certificate (derived deterministically
        // here), disconnected pairs carry none — mirroring the server.
        let certs: Vec<Option<netproto::WireCertificate>> = answers
            .iter()
            .enumerate()
            .map(|(i, &a)| a.then(|| vec![(i as u32, cert_seed)]))
            .collect();
        let mut frame = Vec::new();
        netproto::encode_response_ok(
            &mut frame,
            request_id,
            &answers,
            with_certs.then_some(certs.as_slice()),
        )
        .unwrap();
        let resp = netproto::decode_response(&frame[4..]).unwrap();
        prop_assert_eq!(resp.request_id, request_id);
        match resp.body {
            netproto::ResponseBody::Answers { answers: got, certificates } => {
                prop_assert_eq!(got, answers);
                if with_certs {
                    prop_assert_eq!(certificates, Some(certs));
                } else {
                    prop_assert_eq!(certificates, None);
                }
            }
            netproto::ResponseBody::Error { .. } => prop_assert!(false, "decoded as error"),
        }
        for cut in 0..frame.len() - 4 {
            prop_assert!(netproto::decode_response(&frame[4..4 + cut]).is_err());
        }
    }

    #[test]
    fn net_error_response_round_trips(
        request_id in any::<u64>(),
        code_raw in 1u8..=8,
        msg_seed in any::<u64>(),
    ) {
        let code = netproto::ErrorCode::from_u8(code_raw).unwrap();
        let message = format!("failure-{msg_seed}");
        let mut frame = Vec::new();
        netproto::encode_response_err(&mut frame, request_id, code, &message);
        let resp = netproto::decode_response(&frame[4..]).unwrap();
        prop_assert_eq!(resp.request_id, request_id);
        match resp.body {
            netproto::ResponseBody::Error { code: got, message: got_msg } => {
                prop_assert_eq!(got, code);
                prop_assert_eq!(got_msg, message);
            }
            netproto::ResponseBody::Answers { .. } => prop_assert!(false, "decoded as answers"),
        }
    }
}

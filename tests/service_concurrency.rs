//! Concurrency tests for the serving layer: N threads hammer one shared
//! [`ConnectivityService`] with interleaved fault-set sizes and every
//! answer is checked against the BFS oracle; plus registry lookups
//! racing insert/evict.
//!
//! Run in release in CI (`cargo test --release --test
//! service_concurrency`) — debug-mode runs are valid, just slower.

use ftc::core::store::{EdgeEncoding, LabelStore};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators, Graph};
use ftc::serve::{ConnectivityService, ServiceRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Every thread draws a different interleaving of fault-set sizes (0, 1,
/// …, f) and pair samples over one shared service; every answer must
/// equal the BFS oracle's.
fn hammer(service: &ConnectivityService, g: &Graph, f: usize, threads: usize, rounds: usize) {
    let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let checked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (service, g, endpoint_of, checked) = (service, g, &endpoint_of, &checked);
            scope.spawn(move || {
                for round in 0..rounds {
                    // Interleave sizes differently per thread.
                    let fsize = (worker + round) % (f + 1);
                    let seed = (worker * 1009 + round) as u64;
                    let fset = generators::random_fault_set(g, fsize, seed);
                    let faults: Vec<(usize, usize)> =
                        fset.iter().map(|&e| endpoint_of[e]).collect();
                    let pairs: Vec<(usize, usize)> = (0..16)
                        .map(|i| {
                            let a = (worker * 7919 + round * 31 + i * 13) % g.n();
                            let b = (worker * 104_729 + round * 17 + i * 7) % g.n();
                            (a, b)
                        })
                        .collect();
                    let answers = service.query(&faults, &pairs).expect("query");
                    for (&(s, t), got) in pairs.iter().zip(&answers) {
                        let want = connectivity::connected_avoiding(g, s, t, &fset);
                        assert_eq!(
                            got, want,
                            "worker {worker} round {round} ({s},{t},{fset:?})"
                        );
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(checked.load(Ordering::Relaxed), threads * rounds * 16);
}

#[test]
fn threads_hammering_owned_service_match_bfs_oracle() {
    let f = 3;
    let g = generators::random_connected(40, 70, 11);
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).unwrap();
    let service = ConnectivityService::from_labels(scheme.into_labels());
    hammer(&service, &g, f, 8, 24);
}

#[test]
fn threads_hammering_archive_service_match_bfs_oracle() {
    let f = 3;
    let g = generators::random_connected(40, 70, 23);
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).unwrap();
    for encoding in [EdgeEncoding::Full, EdgeEncoding::Compact] {
        let blob = LabelStore::to_vec(scheme.labels(), encoding);
        let service = ConnectivityService::from_archive_bytes(blob).unwrap();
        hammer(&service, &g, f, 8, 12);
    }
}

/// Lookups and queries race insert/evict cycles on the same IDs; every
/// handle obtained must keep answering correctly even when its entry has
/// been evicted or replaced mid-flight.
#[test]
fn registry_lookups_race_insert_and_evict() {
    let f = 2;
    let g = generators::random_connected(24, 36, 5);
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).unwrap();
    let labels = scheme.into_labels();
    let blob = LabelStore::to_vec(&labels, EdgeEncoding::Full);

    let registry = ServiceRegistry::new();
    registry.insert("g/0", ConnectivityService::from_labels(labels.clone()));

    let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    std::thread::scope(|scope| {
        // Churn threads: register/replace/evict the same IDs in a loop.
        for churn in 0..2 {
            let (registry, labels, blob) = (&registry, &labels, &blob);
            scope.spawn(move || {
                for round in 0..200 {
                    let id = format!("g/{}", (churn + round) % 3);
                    if round % 2 == 0 {
                        registry.insert(&id, ConnectivityService::from_labels(labels.clone()));
                    } else {
                        registry.insert(
                            &id,
                            ConnectivityService::from_archive_bytes(blob.clone()).unwrap(),
                        );
                    }
                    if round % 5 == 0 {
                        registry.evict(&id);
                    }
                    let _ = registry.ids();
                }
            });
        }
        // Lookup threads: whatever handle they get must answer correctly.
        for worker in 0..4 {
            let (registry, g, endpoint_of) = (&registry, &g, &endpoint_of);
            scope.spawn(move || {
                let mut served = 0usize;
                for round in 0..200 {
                    let id = format!("g/{}", (worker + round) % 3);
                    let Some(service) = registry.get(&id) else {
                        // Donate the timeslice to the churn threads: an
                        // archive-backed insert validates the whole-blob
                        // checksum, so on few-core machines both churners
                        // can sit in an open while the registry is empty —
                        // spinning through every round in that window
                        // would make the served>0 assertion vacuous.
                        std::thread::yield_now();
                        continue;
                    };
                    let fset = generators::random_fault_set(g, f, (worker * 131 + round) as u64);
                    let faults: Vec<(usize, usize)> =
                        fset.iter().map(|&e| endpoint_of[e]).collect();
                    let (s, t) = (round % g.n(), (round * 7 + worker) % g.n());
                    let answers = service.query(&faults, &[(s, t)]).expect("query");
                    assert_eq!(
                        answers.get(0).unwrap(),
                        connectivity::connected_avoiding(g, s, t, &fset),
                        "worker {worker} round {round}"
                    );
                    served += 1;
                }
                // The hammer must actually have found services most of
                // the time (churn only evicts 1 in 5 rounds).
                assert!(served > 0, "worker {worker} never found a service");
            });
        }
    });
    // "g/0" existed at the start; after the dust settles the registry is
    // still internally consistent.
    let ids = registry.ids();
    assert!(ids.len() <= 3);
    for id in ids {
        assert!(registry.get(&id).is_some());
    }
}

//! Differential property tests for the session query API: for random
//! graphs, hierarchy backends, and fault sets, the reusable
//! [`QuerySession`] must agree with the ground-truth BFS oracle on every
//! pair — and zero-copy label-view decoding over serialized bytes must
//! agree with owned-label decoding bit-for-bit.

use ftc::core::serial::{edge_to_bytes, vertex_to_bytes, EdgeLabelView, VertexLabelView};
use ftc::core::{FtcScheme, Params, QuerySession};
use ftc::graph::{connectivity, generators};
use proptest::prelude::*;

fn backends(seed: u64) -> [Params; 3] {
    [
        Params::deterministic(2),
        Params::deterministic_poly(2),
        Params::randomized(2, seed),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// QuerySession ≡ BFS oracle, across random graphs, all hierarchy
    /// backends, and random fault sets (including the empty set).
    #[test]
    fn session_equals_oracle(
        n in 6usize..=18,
        extra in 0usize..=10,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fsize in 0usize..=2,
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let fset = generators::random_fault_set(&g, fsize.min(g.m()), fault_seed);
        for params in backends(seed ^ 0x5e55) {
            let scheme = FtcScheme::build(&g, &params).unwrap();
            let l = scheme.labels();
            let session = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let oracle = connectivity::connected_avoiding(&g, s, t, &fset);
                    let via_session =
                        session.connected(l.vertex_label(s), l.vertex_label(t)).unwrap();
                    prop_assert_eq!(via_session, oracle, "session vs oracle at ({}, {})", s, t);
                }
            }
        }
    }

    /// Certificates exist exactly when the pair is connected, and a
    /// per-session certificate never contradicts the oracle.
    #[test]
    fn certificates_agree_with_oracle(
        n in 6usize..=16,
        extra in 1usize..=8,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let session = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        for s in 0..g.n() {
            for t in 0..g.n() {
                let cert = session
                    .certified(l.vertex_label(s), l.vertex_label(t))
                    .unwrap();
                prop_assert_eq!(
                    cert.is_some(),
                    connectivity::connected_avoiding(&g, s, t, &fset)
                );
                // Certificate endpoints are valid pre-orders.
                if let Some(cert) = cert {
                    for &(pa, pb) in cert {
                        prop_assert!((pa as usize) < l.header().aux_n as usize);
                        prop_assert!((pb as usize) < l.header().aux_n as usize);
                    }
                }
            }
        }
    }

    /// Zero-copy `LabelView` decoding over serialized bytes agrees with
    /// owned-label decoding bit-for-bit on every query.
    #[test]
    fn view_decoding_agrees_bit_for_bit(
        n in 6usize..=16,
        extra in 0usize..=8,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();

        // Views must reproduce the owned labels exactly.
        let edge_bytes: Vec<Vec<u8>> =
            (0..g.m()).map(|e| edge_to_bytes(l.edge_label_by_id(e))).collect();
        let vertex_bytes: Vec<Vec<u8>> =
            (0..g.n()).map(|v| vertex_to_bytes(l.vertex_label(v))).collect();
        for (e, bytes) in edge_bytes.iter().enumerate() {
            let view = EdgeLabelView::new(bytes).unwrap();
            prop_assert_eq!(&view.to_label(), l.edge_label_by_id(e));
        }
        for (v, bytes) in vertex_bytes.iter().enumerate() {
            let view = VertexLabelView::new(bytes).unwrap();
            prop_assert_eq!(&view.to_label(), l.vertex_label(v));
        }

        // And whole-query decoding straight from bytes must agree with the
        // owned-label session on every pair.
        let owned = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        let views: Vec<EdgeLabelView> = fset
            .iter()
            .map(|&e| EdgeLabelView::new(&edge_bytes[e]).unwrap())
            .collect();
        let from_bytes = QuerySession::new(l.header(), views).unwrap();
        for s in 0..g.n() {
            for t in 0..g.n() {
                let vv_s = VertexLabelView::new(&vertex_bytes[s]).unwrap();
                let vv_t = VertexLabelView::new(&vertex_bytes[t]).unwrap();
                prop_assert_eq!(
                    from_bytes.connected(vv_s, vv_t).unwrap(),
                    owned.connected(l.vertex_label(s), l.vertex_label(t)).unwrap(),
                    "byte-view session diverged at ({}, {})", s, t
                );
            }
        }
    }
}

/// Empty fault sets are valid prepared states and answer via ancestry
/// component equality, agreeing with the oracle on every pair.
#[test]
fn empty_fault_sets_answer_component_equality() {
    let g = generators::random_connected(20, 24, 17);
    let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
    let l = scheme.labels();
    let session = l
        .session([] as [&ftc::core::EdgeLabel<ftc::core::RsVector>; 0])
        .unwrap();
    assert_eq!(session.num_faults(), 0);
    for s in 0..g.n() {
        for t in 0..g.n() {
            assert_eq!(
                session
                    .connected(l.vertex_label(s), l.vertex_label(t))
                    .unwrap(),
                connectivity::connected_avoiding(&g, s, t, &[]),
            );
        }
    }
}

//! Differential property tests for the scratch-reusing session hot path:
//! a session built through a recycled [`SessionScratch`] must be
//! answer-identical (connectivity *and* certificates) to a freshly-built
//! one, across random graphs, sequences of fault sets with interleaved
//! sizes, and all three label sources (owned labels, full archive views,
//! compact archive views) — with one scratch shared across the whole
//! sequence, including across the two archive encodings.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params, SessionScratch};
use ftc::graph::{connectivity, generators};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn scratch_reused_sessions_are_answer_identical(
        n in 8usize..=18,
        extra in 0usize..=10,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(3)).unwrap();
        let l = scheme.labels();
        let blob_full = LabelStore::to_vec(l, EdgeEncoding::Full);
        let blob_compact = LabelStore::to_vec(l, EdgeEncoding::Compact);
        let view_full = LabelStoreView::open(&blob_full).unwrap();
        let view_compact = LabelStoreView::open(&blob_compact).unwrap();
        let endpoint_of: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();

        // One scratch for the owned path, one shared by BOTH archive
        // views, reused across a sequence of interleaved fault-set sizes.
        let mut owned_scratch = SessionScratch::new();
        let mut archive_scratch = SessionScratch::new();
        for (round, fsize) in [3usize, 0, 1, 3, 2, 0, 3].into_iter().enumerate() {
            let fset = generators::random_fault_set(
                &g,
                fsize.min(g.m()),
                fault_seed.wrapping_add(round as u64),
            );
            let pairs: Vec<(usize, usize)> = fset.iter().map(|&e| endpoint_of[e]).collect();

            let fresh = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
            let reused = l
                .session_in(fset.iter().map(|&e| l.edge_label_by_id(e)), &mut owned_scratch)
                .unwrap();
            let from_full = view_full
                .session_in(pairs.iter().copied(), &mut archive_scratch)
                .unwrap();
            // The compact build reuses the same scratch the full build
            // just used (the detector reconfigures per build).
            let from_compact = view_compact
                .session_in(pairs.iter().copied(), &mut archive_scratch)
                .unwrap();

            for s in 0..g.n() {
                for t in 0..g.n() {
                    let want_cert = fresh
                        .certified(l.vertex_label(s), l.vertex_label(t))
                        .unwrap()
                        .map(<[(u32, u32)]>::to_vec);
                    let got = reused
                        .certified(l.vertex_label(s), l.vertex_label(t))
                        .unwrap()
                        .map(<[(u32, u32)]>::to_vec);
                    prop_assert_eq!(&got, &want_cert, "owned scratch at ({}, {})", s, t);
                    let vs = view_full.vertex(s).unwrap();
                    let vt = view_full.vertex(t).unwrap();
                    let got_full = from_full.certified(vs, vt).unwrap().map(<[(u32, u32)]>::to_vec);
                    prop_assert_eq!(&got_full, &want_cert, "full archive at ({}, {})", s, t);
                    let cs = view_compact.vertex(s).unwrap();
                    let ct = view_compact.vertex(t).unwrap();
                    let got_compact =
                        from_compact.certified(cs, ct).unwrap().map(<[(u32, u32)]>::to_vec);
                    prop_assert_eq!(&got_compact, &want_cert, "compact archive at ({}, {})", s, t);
                    // And all of it anchored to the ground-truth oracle.
                    prop_assert_eq!(
                        want_cert.is_some(),
                        connectivity::connected_avoiding(&g, s, t, &fset),
                        "oracle at ({}, {})", s, t
                    );
                }
            }
            owned_scratch.recycle(reused);
            archive_scratch.recycle(from_full);
            archive_scratch.recycle(from_compact);
        }
    }

    /// Batched queries agree with single queries on every source.
    #[test]
    fn connected_many_matches_connected(
        n in 8usize..=16,
        extra in 0usize..=8,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let fset = generators::random_fault_set(&g, 2.min(g.m()), fault_seed);
        let session = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        let pairs: Vec<_> = (0..g.n())
            .flat_map(|s| (0..g.n()).map(move |t| (s, t)))
            .map(|(s, t)| (l.vertex_label(s), l.vertex_label(t)))
            .collect();
        let mut out = Vec::new();
        session.connected_many(&pairs, &mut out).unwrap();
        prop_assert_eq!(out.len(), pairs.len());
        for ((s, t), &got) in pairs.iter().zip(&out) {
            prop_assert_eq!(got, session.connected(s, t).unwrap());
        }
    }
}

//! Differential tests for the label-archive API: for random graphs and
//! fault sets, a [`ftc::core::store::LabelStoreView`] session (over
//! either edge encoding) must agree with the owned
//! [`ftc::core::LabelSet`] session and with the ground-truth BFS oracle
//! on every pair; multi-threaded `SchemeBuilder` builds must produce
//! byte-identical archives to single-threaded ones; and a router
//! reconstituted from an archive must route exactly like the one that
//! built the labels.

use ftc::core::store::{EdgeEncoding, LabelStore, LabelStoreView};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators};
use ftc::routing::ForbiddenSetRouter;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Archive session ≡ owned session ≡ BFS oracle, across random
    /// graphs, fault sets (including the empty set), and both edge
    /// encodings.
    #[test]
    fn archive_session_equals_owned_session_equals_oracle(
        n in 6usize..=18,
        extra in 0usize..=10,
        seed in any::<u64>(),
        fault_seed in any::<u64>(),
        fsize in 0usize..=2,
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let fset = generators::random_fault_set(&g, fsize.min(g.m()), fault_seed);
        let endpoints: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
        let fault_pairs: Vec<(usize, usize)> = fset.iter().map(|&e| endpoints[e]).collect();
        let scheme = FtcScheme::build(&g, &Params::deterministic(2)).unwrap();
        let l = scheme.labels();
        let owned = l.session(fset.iter().map(|&e| l.edge_label_by_id(e))).unwrap();
        for encoding in [EdgeEncoding::Full, EdgeEncoding::Compact] {
            let blob = LabelStore::to_vec(l, encoding);
            let view = LabelStoreView::open(&blob).unwrap();
            let archived = view.session(fault_pairs.iter().copied()).unwrap();
            for s in 0..g.n() {
                for t in 0..g.n() {
                    let oracle = connectivity::connected_avoiding(&g, s, t, &fset);
                    let via_owned =
                        owned.connected(l.vertex_label(s), l.vertex_label(t)).unwrap();
                    let via_archive = archived
                        .connected(view.vertex(s).unwrap(), view.vertex(t).unwrap())
                        .unwrap();
                    prop_assert_eq!(via_owned, oracle, "owned vs oracle at ({}, {})", s, t);
                    prop_assert_eq!(
                        via_archive, oracle,
                        "{:?} archive vs oracle at ({}, {})", encoding, s, t
                    );
                }
            }
        }
    }

    /// A multi-threaded `SchemeBuilder` build must produce archives
    /// byte-identical to the single-threaded one, for both encodings.
    #[test]
    fn threaded_builds_produce_identical_archives(
        n in 8usize..=24,
        extra in 0usize..=12,
        seed in any::<u64>(),
        threads in 2usize..=8,
    ) {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        let g = generators::random_connected(n, extra.min(max_extra), seed);
        let p = Params::deterministic(2);
        let serial = FtcScheme::builder(&g).params(&p).threads(1).build().unwrap();
        let parallel = FtcScheme::builder(&g).params(&p).threads(threads).build().unwrap();
        for encoding in [EdgeEncoding::Full, EdgeEncoding::Compact] {
            prop_assert_eq!(
                LabelStore::to_vec(serial.labels(), encoding),
                LabelStore::to_vec(parallel.labels(), encoding)
            );
        }
    }
}

/// A router reconstituted from a stored archive answers every route
/// exactly like the router that built the labels.
#[test]
fn reconstituted_router_equals_built_router() {
    let g = generators::random_connected(18, 14, 11);
    let built = ForbiddenSetRouter::new(&g, 2).unwrap();
    let blob = LabelStore::to_vec(built.labels(), EdgeEncoding::Full);
    let view = LabelStoreView::open(&blob).unwrap();
    let restored = ForbiddenSetRouter::from_store(&g, &view).unwrap();
    for seed in 0..6u64 {
        let fset = generators::random_fault_set(&g, 2, seed);
        for s in 0..g.n() {
            for t in 0..g.n() {
                assert_eq!(
                    restored.route(s, t, &fset).unwrap(),
                    built.route(s, t, &fset).unwrap(),
                    "({s},{t},{fset:?})"
                );
            }
        }
    }
}

//! Blue/green swap under live traffic: 8 query threads hammer one
//! graph ID through real TCP connections while the registry entry is
//! swapped 100 times for a freshly opened archive. Every answer is
//! checked against the BFS oracle; nothing may hang, answer wrongly, or
//! fail with a non-retryable error, and generations must be strictly
//! monotonic.

use ftc::core::store::{EdgeEncoding, LabelStore};
use ftc::core::{FtcScheme, Params};
use ftc::graph::{connectivity, generators};
use ftc::net::client::Client;
use ftc::net::server::{Server, ServerConfig};
use ftc::serve::{ConnectivityService, ServiceRegistry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn swaps_under_live_traffic_never_produce_wrong_answers() {
    let g = generators::random_connected(30, 45, 11);
    let f = 2;
    let scheme = FtcScheme::build(&g, &Params::deterministic(f)).unwrap();
    let blob = LabelStore::to_vec(scheme.labels(), EdgeEncoding::Full);
    let fresh_service =
        || ConnectivityService::from_archive_bytes(blob.clone()).expect("valid archive");

    let registry = Arc::new(ServiceRegistry::new());
    registry.insert("g", fresh_service());
    let server = Server::bind(
        registry.clone(),
        "127.0.0.1:0",
        ServerConfig {
            read_poll: Duration::from_millis(5),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());

    let all: Vec<(usize, usize)> = g.edge_iter().map(|(_, u, v)| (u, v)).collect();
    let swapping = AtomicBool::new(true);
    std::thread::scope(|scope| {
        let swapper = {
            let registry = registry.clone();
            let swapping = &swapping;
            scope.spawn(move || {
                let mut generations = Vec::with_capacity(100);
                for _ in 0..100 {
                    generations.push(registry.swap("g", fresh_service()));
                    std::thread::sleep(Duration::from_millis(1));
                }
                swapping.store(false, Ordering::Release);
                generations
            })
        };
        for worker in 0..8usize {
            let (g, all, swapping) = (&g, &all, &swapping);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut completed = 0u64;
                let mut i = 0usize;
                // Keep querying until all 100 swaps have happened, then
                // a little longer so post-swap traffic is covered too.
                while swapping.load(Ordering::Acquire) || completed < 20 {
                    let fset = generators::random_fault_set(g, 2, (worker * 31 + i) as u64);
                    let endpoints: Vec<(usize, usize)> = fset.iter().map(|&e| all[e]).collect();
                    let pairs = [(i % g.n(), (i * 3 + worker) % g.n())];
                    // No retry budget: a swap must be invisible at this
                    // layer — any error at all fails the test.
                    let answers = client.query("g", &endpoints, &pairs).unwrap();
                    let want = connectivity::connected_avoiding(g, pairs[0].0, pairs[0].1, &fset);
                    assert_eq!(
                        answers,
                        vec![want],
                        "worker {worker} got a wrong answer mid-swap"
                    );
                    completed += 1;
                    i += 1;
                }
                assert!(completed > 0);
            });
        }
        let generations = swapper.join().unwrap();
        assert_eq!(generations.len(), 100);
        assert!(
            generations.windows(2).all(|w| w[0] < w[1]),
            "swap generations must be strictly monotonic"
        );
        assert_eq!(
            registry.generation("g"),
            Some(*generations.last().unwrap()),
            "registry reports the last swapped-in generation"
        );
    });

    handle.shutdown();
    join.join().unwrap().unwrap();
    assert!(handle.stats().requests > 0);
}
